"""Network cost model for the simulated cluster.

The paper's measurements (KAP latencies) are dominated by message counts,
message sizes, and overlay-tree depth, so we use a LogGP-flavoured model:

- every simulated node owns one :class:`Nic`;
- sending a message serializes on the sender's NIC
  (``size / bandwidth`` seconds, FIFO), then takes ``latency`` seconds
  of wire time to arrive;
- delivery enqueues the message into the destination's inbox channel.

Intra-node hops (an external program talking to its local broker over
the "UNIX domain socket") use a cheap FIFO :class:`IpcLink` with its
own latency/bandwidth, separate from the NIC, mirroring the paper's
CMB client transport.

All parameters are plain floats so experiments can model different
fabrics; :mod:`repro.sim.cluster` provides QDR-InfiniBand-like defaults
matched to the paper's Zin/Cab testbed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Optional

from .kernel import Channel, Simulation

if TYPE_CHECKING:  # pragma: no cover
    from .faults import FaultPlan
    from .node import Node

__all__ = ["NetworkParams", "Nic", "IpcLink", "Network", "DeliveryError"]


class DeliveryError(Exception):
    """Raised (via a failed event) when a message cannot be delivered."""


@dataclass(frozen=True)
class NetworkParams:
    """Fabric parameters.

    Attributes
    ----------
    latency:
        One-way wire latency in seconds (QDR IB ~ 1.3 us).
    bandwidth:
        Link bandwidth in bytes/second (QDR IB ~ 3.2 GB/s effective).
    ipc_latency / ipc_bandwidth:
        Cost of the local client<->broker hop (UNIX socket).
    per_message_overhead:
        Fixed software overhead charged per send, covering framing,
        syscalls and broker dispatch (seconds).
    """

    latency: float = 1.3e-6
    bandwidth: float = 3.2e9
    ipc_latency: float = 2.0e-6
    ipc_bandwidth: float = 6.0e9
    per_message_overhead: float = 2.0e-6


class Nic:
    """A node's network interface: FIFO serialization of outgoing bytes.

    The NIC is the contention point: two messages leaving the same node
    back-to-back serialize, which is what makes large tree reductions
    (fence with unique values) cost linear time near the root.
    """

    __slots__ = ("sim", "params", "busy_until", "bytes_sent", "msgs_sent")

    def __init__(self, sim: Simulation, params: NetworkParams):
        self.sim = sim
        self.params = params
        self.busy_until: float = 0.0
        self.bytes_sent: int = 0
        self.msgs_sent: int = 0

    def send_delay(self, size: int) -> float:
        """Reserve the NIC for ``size`` bytes; return total delay until
        the message arrives at the remote peer (serialization + wire
        latency + software overhead), measured from *now*.
        """
        now = self.sim.now
        start = max(now, self.busy_until) + self.params.per_message_overhead
        end = start + size / self.params.bandwidth
        self.busy_until = end
        self.bytes_sent += size
        self.msgs_sent += 1
        return (end + self.params.latency) - now


class IpcLink:
    """Local-host transport between co-located endpoints.

    FIFO like a UNIX socket: back-to-back local sends serialize, so a
    small message never overtakes a large one on the same link.
    """

    __slots__ = ("sim", "params", "busy_until")

    def __init__(self, sim: Simulation, params: NetworkParams):
        self.sim = sim
        self.params = params
        self.busy_until: float = 0.0

    def send_delay(self, size: int) -> float:
        """Reserve the link for ``size`` bytes; returns the delay from
        now until local delivery."""
        now = self.sim.now
        start = max(now, self.busy_until) + self.params.per_message_overhead
        end = start + size / self.params.ipc_bandwidth
        self.busy_until = end
        return (end + self.params.ipc_latency) - now


class Network:
    """Registry of nodes and the delivery fabric between them.

    Endpoints register an inbox :class:`Channel` under an integer node
    id.  :meth:`send` charges the cost model and schedules delivery; a
    message addressed to a failed (deregistered) node is counted as
    dropped and optionally reported to ``drop_hook``.
    """

    #: Port key of the default inbox created by :meth:`register`.
    DEFAULT_PORT = "default"

    def __init__(self, sim: Simulation, params: Optional[NetworkParams] = None):
        self.sim = sim
        self.params = params or NetworkParams()
        self._nics: dict[int, Nic] = {}
        self._loopbacks: dict[int, IpcLink] = {}
        # (node_id, port_key) -> inbox.  Multiple comms sessions coexist
        # on one node (the paper's per-job overlay networks); they share
        # the node's NIC but each owns a distinct port.
        self._inboxes: dict[tuple[int, Any], Channel] = {}
        self._alive: dict[int, bool] = {}
        self.dropped: int = 0
        self.delivered: int = 0
        self.drop_hook: Optional[Callable[[int, int, Any], None]] = None
        #: Optional :class:`~repro.sim.faults.FaultPlan` perturbing
        #: inter-node traffic (chaos testing).  ``None`` — the default —
        #: leaves the delivery path bit-identical to a plan-free build.
        self.fault_plan: Optional["FaultPlan"] = None
        #: Optional :class:`~repro.analysis.sanitizers.SanitizerSet`
        #: observing every send/deliver/drop (FIFO-order checking).
        #: Pure observer: it schedules no events and mutates nothing,
        #: so installing one leaves the run event-identical.
        self.sanitizers: Optional[Any] = None

    # -- membership -----------------------------------------------------
    def register(self, node_id: int) -> Channel:
        """Attach ``node_id`` to the fabric (NIC + default port);
        returns the default inbox channel."""
        if node_id in self._nics:
            raise ValueError(f"node {node_id} already registered")
        self._nics[node_id] = Nic(self.sim, self.params)
        self._loopbacks[node_id] = IpcLink(self.sim, self.params)
        self._alive[node_id] = True
        return self.open_port(node_id, self.DEFAULT_PORT)

    def open_port(self, node_id: int, port_key: Any) -> Channel:
        """Open an additional named inbox on a registered node — one
        per comms session, so nested Flux jobs each get their own
        overlay endpoints over the shared NIC."""
        if node_id not in self._nics:
            raise ValueError(f"node {node_id} not registered")
        slot = (node_id, port_key)
        if slot in self._inboxes:
            raise ValueError(f"port {port_key!r} already open on "
                             f"node {node_id}")
        inbox = self.sim.channel(name=f"inbox:{node_id}:{port_key}")
        self._inboxes[slot] = inbox
        return inbox

    def close_port(self, node_id: int, port_key: Any) -> None:
        """Close a session port (future traffic to it is dropped)."""
        self._inboxes.pop((node_id, port_key), None)

    def inbox(self, node_id: int, port_key: Any = DEFAULT_PORT) -> Channel:
        """The inbox channel of ``node_id`` on ``port_key``."""
        return self._inboxes[(node_id, port_key)]

    def nic(self, node_id: int) -> Nic:
        """The NIC of ``node_id`` (for statistics inspection)."""
        return self._nics[node_id]

    def fail_node(self, node_id: int) -> None:
        """Mark a node dead: all future traffic to/from it is dropped."""
        self._alive[node_id] = False

    def revive_node(self, node_id: int) -> None:
        """Bring a failed node back (used by self-healing tests)."""
        self._alive[node_id] = True

    def is_alive(self, node_id: int) -> bool:
        """Whether the node currently accepts/produces traffic."""
        return self._alive.get(node_id, False)

    # -- transfer ---------------------------------------------------------
    def send(self, src: int, dst: int, payload: Any, size: int,
             port: Any = DEFAULT_PORT) -> None:
        """Transmit ``payload`` (accounted as ``size`` bytes) src -> dst,
        addressed to ``port`` on the destination.

        Fire-and-forget: reliability above the per-hop level (e.g. RPC
        retries after node failure) is the overlay's job, matching the
        paper's "reliable, in-order delivery per plane" property — the
        fabric never reorders messages between the same pair.
        """
        san = self.sanitizers
        if san is not None:
            san.on_send(src, dst, port, payload)
        if src == dst:
            # Loopback between co-located endpoints: FIFO IPC cost.
            delay = self._loopbacks[src].send_delay(size)
        else:
            if not self._alive.get(src, False):
                self._drop(src, dst, payload)
                return
            delay = self._nics[src].send_delay(size)
            plan = self.fault_plan
            if plan is not None:
                # Chaos path: the NIC was charged (bytes left the host)
                # before the fabric drops/duplicates/delays the message.
                dropped, dups, extra = plan.decide(src, dst)
                if dropped:
                    self._drop(src, dst, payload)
                    return
                deliver_at = plan.fifo_clamp(src, dst,
                                             self.sim.now + delay + extra)
                for _ in range(1 + dups):
                    at = plan.fifo_clamp(src, dst, deliver_at)
                    ev = self.sim.deliver_timeout(dst, at - self.sim.now)
                    ev._cb1 = (
                        lambda _ev: self._deliver(src, dst, port, payload))
                return
        # Freshly created timeouts have no waiters, so the first-callback
        # slot is assigned directly (equivalent to add_callback, minus
        # its state checks on this hottest of paths).  deliver_timeout
        # (not timeout) so a sharded kernel can home the delivery event
        # in the destination node's shard.
        ev = self.sim.deliver_timeout(dst, delay)
        ev._cb1 = lambda _ev: self._deliver(src, dst, port, payload)

    def _deliver(self, src: int, dst: int, port: Any,
                 payload: Any) -> None:
        inbox = self._inboxes.get((dst, port))
        if not self._alive.get(dst, False) or inbox is None:
            self._drop(src, dst, payload)
            return
        self.delivered += 1
        if self.sanitizers is not None:
            self.sanitizers.on_deliver(src, dst, port, payload)
        inbox.put(payload)

    def _drop(self, src: int, dst: int, payload: Any) -> None:
        self.dropped += 1
        if self.sanitizers is not None:
            self.sanitizers.on_drop(src, dst, payload)
        if self.drop_hook is not None:
            self.drop_hook(src, dst, payload)

    # -- stats --------------------------------------------------------
    def total_bytes_sent(self) -> int:
        """Aggregate bytes pushed through every NIC so far."""
        return sum(nic.bytes_sent for nic in self._nics.values())
