"""Simulated compute nodes.

A :class:`Node` models one cluster host: an id, a core count, memory,
a power envelope, and bookkeeping of the simulated processes currently
placed on it.  CPU time itself is not simulated (the paper's KAP
latencies are communication-bound); nodes exist to give overlays a
placement substrate, to bound core allocation in the scheduler, and to
anchor NICs and failure state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

__all__ = ["NodeSpec", "Node"]


@dataclass(frozen=True)
class NodeSpec:
    """Hardware description of one host.

    Defaults match the paper's Zin/Cab nodes: two 8-core Xeon E5-2670
    sockets (16 cores) and 32 GB of RAM.  ``idle_watts``/``core_watts``
    feed the generalized-resource power model.
    """

    cores: int = 16
    sockets: int = 2
    memory_bytes: int = 32 * 2**30
    idle_watts: float = 100.0
    core_watts: float = 12.5


class Node:
    """One simulated host: placement capacity plus liveness state."""

    __slots__ = ("node_id", "spec", "hostname", "alive",
                 "_cores_used", "procs")

    def __init__(self, node_id: int, spec: Optional[NodeSpec] = None,
                 hostname: Optional[str] = None):
        self.node_id = node_id
        self.spec = spec or NodeSpec()
        self.hostname = hostname or f"node{node_id:04d}"
        self.alive = True
        self._cores_used = 0
        self.procs: list[Any] = []

    @property
    def cores(self) -> int:
        """Total cores on the node."""
        return self.spec.cores

    @property
    def cores_free(self) -> int:
        """Cores not currently claimed by placed processes."""
        return self.spec.cores - self._cores_used

    def claim_cores(self, n: int) -> None:
        """Reserve ``n`` cores; raises ``ValueError`` when oversubscribed."""
        if n < 0:
            raise ValueError("core count must be non-negative")
        if self._cores_used + n > self.spec.cores:
            raise ValueError(
                f"{self.hostname}: requested {n} cores, only "
                f"{self.cores_free} free")
        self._cores_used += n

    def release_cores(self, n: int) -> None:
        """Return ``n`` previously claimed cores."""
        if n < 0 or n > self._cores_used:
            raise ValueError(f"{self.hostname}: cannot release {n} cores "
                             f"({self._cores_used} in use)")
        self._cores_used -= n

    def power_draw(self) -> float:
        """Instantaneous watts: idle floor plus per-busy-core draw."""
        return self.spec.idle_watts + self._cores_used * self.spec.core_watts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.alive else "DOWN"
        return (f"<Node {self.hostname} [{state}] "
                f"{self._cores_used}/{self.spec.cores} cores>")
