"""Sharded event loop: per-subtree sub-kernels under a conservative
lookahead barrier.

The single-heap kernel processes one global total order; at 65k
producers the heap and the per-event dispatch dominate wall-clock.
This module splits the event loop into per-shard heaps — one shard per
group of tree subtrees — exploiting the one structural fact the LogGP
fabric guarantees: **every interaction between nodes crosses the
network**, and the cheapest cross-node hop costs at least ``L =
per_message_overhead + latency`` simulated seconds (the IPC loopback
between co-located endpoints costs even more).  ``L`` is therefore a
safe lookahead horizon in the classic conservative-PDES sense: a shard
may freely process events earlier than ``min(other shards' next event
time) + L``, because nothing the other shards have yet to do can
schedule into it before that.

Two execution modes, chosen automatically:

- **merged** — pop the globally smallest ``(time, priority, seq)``
  entry across all shard heaps.  The sequence counter is global, so
  this is *provably the identical total order* the single-heap kernel
  produces: any observer (the SAN105 replay fingerprint hook above
  all) sees byte-for-byte the same stream.  Used whenever an
  ``event_hook`` is installed, a ``max_events`` budget or ``until``
  bound applies, or the lookahead is zero (e.g. a zero-latency
  fabric — the "fall back to a single shard" edge case).
- **burst** — repeatedly pick the shard with the earliest next event
  and drain it up to the barrier horizon.  Within a horizon window
  shards process in wall-clock order, not simulated-time order, so
  this mode is reserved for hook-free full-drain runs (the KAP bench);
  results (latencies, byte counts, event totals) are unchanged because
  no cross-shard interaction can occur inside the window.

Cross-shard scheduling happens at exactly one point:
:meth:`ShardedSimulation.deliver_timeout`, the network's delivery
site, homes the arrival event in the destination node's shard.  All
other scheduling stays in the shard whose event is being processed, so
the hot inlined ``heappush(sim._heap, ...)`` paths in the kernel are
untouched — ``self._heap`` is simply rebound to the active shard's
heap.
"""

from __future__ import annotations

from heapq import heapify, heappop
from typing import Optional

from .kernel import Simulation, SimulationError, Timeout

__all__ = ["ShardedSimulation", "shard_map_from_topology"]

_INF = float("inf")


def shard_map_from_topology(topology, nshards: int) -> dict[int, int]:
    """Partition tree ranks into ``nshards`` shards by subtree.

    Every rank is assigned the shard of its ancestor at the first tree
    level with at least ``nshards`` ranks (round-robin over that
    level); ranks above that level — the trunk, including the root —
    share shard 0.  Whole subtrees land in one shard, so the only
    cross-shard traffic is trunk traffic, which is exactly the traffic
    with full per-hop network latency.
    """
    if nshards < 1:
        raise ValueError("nshards must be positive")
    size, k = topology.size, topology.arity
    # First level holding >= nshards ranks (level d has k**d ranks).
    depth, width = 0, 1
    while width < nshards and width < size:
        depth += 1
        width *= k
    mapping: dict[int, int] = {}
    for rank in range(size):
        d, r = 0, rank
        anc = [rank]
        while r != 0:
            r = (r - 1) // k
            anc.append(r)
            d += 1
        if d < depth:
            mapping[rank] = 0
            continue
        # Ancestor at exactly `depth`; its index among that level's
        # ranks gives the round-robin shard.
        a = anc[d - depth]
        first = (k ** depth - 1) // (k - 1) if k > 1 else depth
        mapping[rank] = (a - first) % nshards
    return mapping


class ShardedSimulation(Simulation):
    """A :class:`Simulation` whose heap is split into per-shard heaps.

    Parameters
    ----------
    nshards:
        Number of sub-kernels.  1 behaves exactly like the base class.
    lookahead:
        The conservative barrier horizon ``L`` (minimum cross-shard
        link delay, in simulated seconds).  ``<= 0`` disables burst
        mode entirely — the kernel then always runs merged, which is
        event-identical to a single shard.

    Use :meth:`set_shard_map` (or :func:`shard_map_from_topology`) to
    home each node's delivery events; unmapped nodes fall to shard 0.
    """

    def __init__(self, seed: int = 0, *, strict: bool = True,
                 nshards: int = 1, lookahead: float = 0.0):
        super().__init__(seed=seed, strict=strict)
        if nshards < 1:
            raise ValueError("nshards must be positive")
        self.nshards = nshards
        self.lookahead = float(lookahead)
        #: ``_heaps[0]`` is the heap the base class created; setup-time
        #: scheduling (before :meth:`run`) lands there.
        self._heaps: list[list] = [self._heap] + [
            [] for _ in range(nshards - 1)]
        self._shard_of: dict[int, int] = {}
        #: Lower bound on the earliest event in any *non-active* shard
        #: (burst mode): shrinks when the active shard schedules a
        #: delivery into another shard, so the drain horizon tightens
        #: immediately and causality can never be violated.
        self._xmin = _INF

    def set_shard_map(self, mapping: dict[int, int]) -> None:
        """Assign node ids to shards (values are taken mod nshards)."""
        self._shard_of = {node: shard % self.nshards
                          for node, shard in mapping.items()}

    def shard_of(self, node_id: int) -> int:
        """Shard homing ``node_id``'s delivery events."""
        return self._shard_of.get(node_id, 0)

    # -- scheduling ----------------------------------------------------
    def deliver_timeout(self, node_id: int, delay: float) -> Timeout:
        target = self._heaps[self._shard_of.get(node_id, 0)]
        cur = self._heap
        if target is cur:
            return Timeout(self, delay)
        self._heap = target
        try:
            ev = Timeout(self, delay)
        finally:
            self._heap = cur
        t = self.now + delay
        if t < self._xmin:
            self._xmin = t
        return ev

    def _note_dead(self) -> None:
        # Compact *all* shard heaps in place (same invisibility
        # argument as the base class; rebinding any heap mid-run would
        # strand events the inlined push paths still target).
        self._ndead += 1
        if self._ndead > 512 and self._ndead * 2 > sum(
                len(h) for h in self._heaps):
            for heap in self._heaps:
                heap[:] = [e for e in heap if not e[3]._dead]
                heapify(heap)
            self._ndead = 0

    # -- merged mode ---------------------------------------------------
    def _step(self, max_events: Optional[int] = None) -> bool:
        """Pop and process the globally next live event across shards.

        The ``(time, priority, seq)`` key is a total order with a
        *global* sequence counter, so the merged pop sequence is
        exactly the single-heap kernel's processing order — replay
        fingerprints match by construction.
        """
        best = None
        best_key = None
        for h in self._heaps:
            while h and h[0][3]._dead:
                heappop(h)
                if self._ndead > 0:
                    self._ndead -= 1
            if h and (best_key is None or h[0] < best_key):
                best_key = h[0]
                best = h
        if best is None:
            return False
        entry = heappop(best)
        ev = entry[3]
        self._heap = best
        t = entry[0]
        self.now = t
        self._nevents += 1
        if max_events is not None and self._nevents > max_events:
            raise SimulationError(
                f"event budget {max_events} exhausted at t={self.now:g}")
        if self.event_hook is not None:
            self.event_hook(t, entry[1], ev)
        ev._run_callbacks()
        return True

    def _min_head(self) -> Optional[float]:
        """Earliest live event time across shards (clearing dead heads)."""
        best = None
        for h in self._heaps:
            while h and h[0][3]._dead:
                heappop(h)
                if self._ndead > 0:
                    self._ndead -= 1
            if h and (best is None or h[0][0] < best):
                best = h[0][0]
        return best

    # -- drivers -------------------------------------------------------
    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        if self.nshards <= 1:
            return super().run(until, max_events)
        if (until is None and max_events is None
                and self.event_hook is None and self.lookahead > 0.0):
            return self._run_burst()
        if until is None:
            while self._step(max_events):
                pass
            return self.now
        while True:
            head = self._min_head()
            if head is None:
                break
            if head > until:
                self.now = until
                return self.now
            self._step(max_events)
        if until > self.now:
            self.now = until
        return self.now

    def _run_burst(self) -> float:
        """Pick the earliest shard, drain it to the lookahead horizon,
        repeat.  See the module docstring for the safety argument; the
        horizon is ``_xmin + L`` with ``_xmin`` maintained *live* by
        :meth:`deliver_timeout`, so a delivery scheduled into another
        shard mid-drain tightens the horizon before the next event."""
        heaps = self._heaps
        L = self.lookahead
        max_now = self.now
        while True:
            best = None
            best_t = _INF
            other = _INF
            for h in heaps:
                while h and h[0][3]._dead:
                    heappop(h)
                    if self._ndead > 0:
                        self._ndead -= 1
                if not h:
                    continue
                t = h[0][0]
                if t < best_t:
                    other = best_t
                    best_t = t
                    best = h
                elif t < other:
                    other = t
            if best is None:
                if max_now > self.now:
                    self.now = max_now
                return self.now
            self._heap = best
            self._xmin = other
            while best:
                entry = best[0]
                ev = entry[3]
                if ev._dead:
                    heappop(best)
                    if self._ndead > 0:
                        self._ndead -= 1
                    continue
                if entry[0] >= self._xmin + L:
                    break
                heappop(best)
                self.now = entry[0]
                self._nevents += 1
                # Inlined callback dispatch (byte-for-byte the tight
                # run loop of the base kernel).
                ev._state = 2  # Event.PROCESSED
                cb1 = ev._cb1
                callbacks = ev.callbacks
                ev._cb1 = None
                ev.callbacks = None
                if cb1 is not None:
                    cb1(ev)
                if callbacks:
                    for fn in callbacks:
                        fn(ev)
            if self.now > max_now:
                max_now = self.now
