"""Contended shared resources.

Models center-wide shared services — above all the parallel file
system whose "overlapping I/O bursts coming from only a handful of
unrelated jobs can disrupt the entire center" (paper Section I).

A :class:`SharedResource` has a fixed capacity (e.g. bytes/second of
file-system bandwidth).  Simulated processes move work through it with
:meth:`transfer`; concurrent flows share the capacity under a
configurable discipline — max-min fair, or demand-proportional (the
burst-dominated behaviour of a real parallel FS) — and every
arrival/departure re-paces the survivors, so an I/O burst stretches
everyone else's transfers exactly the way an unscheduled checkpoint
storm does on a real Lustre.
"""

from __future__ import annotations

from typing import Optional

from .kernel import Event, Simulation

__all__ = ["Flow", "SharedResource", "max_min_rates",
           "proportional_rates"]


class Flow:
    """One active transfer through a shared resource."""

    __slots__ = ("demand", "rate", "_change", "label")

    def __init__(self, demand: float, label: str = ""):
        self.demand = demand          # the flow's own max rate
        self.rate = 0.0               # current fair allocation
        self.label = label
        self._change: Optional[Event] = None


def max_min_rates(capacity: float, demands: list[float]) -> list[float]:
    """Max-min fair allocation of ``capacity`` over ``demands``.

    Iteratively satisfies the smallest demands in full and splits the
    leftover evenly among the rest.
    """
    n = len(demands)
    if n == 0:
        return []
    rates = [0.0] * n
    remaining = capacity
    active = sorted(range(n), key=lambda i: demands[i])
    left = n
    for idx in active:
        share = remaining / left
        give = min(demands[idx], share)
        rates[idx] = give
        remaining -= give
        left -= 1
    return rates


def proportional_rates(capacity: float,
                       demands: list[float]) -> list[float]:
    """Demand-proportional allocation: when oversubscribed, every flow
    gets ``capacity * d_i / sum(d)``.

    This is the discipline that matches a parallel file system under a
    checkpoint storm — aggressive bursts squeeze small unrelated I/O
    in proportion to how hard they push, which is precisely the
    center-disruption the paper's introduction describes (max-min, by
    contrast, would protect the small flows).
    """
    total = sum(demands)
    if total <= capacity:
        return list(demands)
    scale = capacity / total
    return [d * scale for d in demands]


class SharedResource:
    """A capacity shared by concurrent flows.

    Parameters
    ----------
    sim:
        The simulation.
    capacity:
        Total service rate (units/second — e.g. bytes/s for a file
        system, requests/s for a metadata server).
    name:
        Label for stats.
    policy:
        ``"maxmin"`` (fair, protects small flows) or ``"proportional"``
        (burst-dominated, models real parallel-FS contention).
    """

    def __init__(self, sim: Simulation, capacity: float, name: str = "",
                 policy: str = "maxmin"):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if policy not in ("maxmin", "proportional"):
            raise ValueError(f"unknown sharing policy {policy!r}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.policy = policy
        self._flows: list[Flow] = []
        # Observability.
        self.total_transferred = 0.0
        self.peak_flows = 0

    # ------------------------------------------------------------------
    @property
    def active_flows(self) -> int:
        """Number of concurrent transfers right now."""
        return len(self._flows)

    def current_demand(self) -> float:
        """Sum of active flows' demands (may exceed capacity)."""
        return sum(f.demand for f in self._flows)

    def _recompute(self) -> None:
        fn = (max_min_rates if self.policy == "maxmin"
              else proportional_rates)
        rates = fn(self.capacity, [f.demand for f in self._flows])
        for flow, rate in zip(self._flows, rates):
            if rate != flow.rate:
                flow.rate = rate
                ev = flow._change
                if ev is not None and not ev.triggered:
                    ev.succeed()

    # ------------------------------------------------------------------
    def transfer(self, amount: float, demand: float, label: str = ""):
        """Move ``amount`` units at up to ``demand`` units/second.

        A generator — run it from a simulated process with ``yield
        from``; returns the elapsed transfer time.  The actual rate is
        the policy's share, re-paced whenever other flows arrive or
        leave.
        """
        if amount < 0 or demand <= 0:
            raise ValueError("need amount >= 0 and demand > 0")
        if amount == 0:
            return 0.0
        flow = Flow(demand, label)
        start = self.sim.now
        self._flows.append(flow)
        self.peak_flows = max(self.peak_flows, len(self._flows))
        self._recompute()
        remaining = amount
        try:
            while remaining > 1e-12:
                rate = flow.rate
                t0 = self.sim.now
                flow._change = self.sim.event(name=f"repace:{label}")
                done = self.sim.timeout(remaining / rate)
                which, _ = yield self.sim.any_of([done, flow._change])
                remaining -= (self.sim.now - t0) * rate
                if which == 0:
                    break
                done.abandon()
        finally:
            flow._change = None
            self._flows.remove(flow)
            self._recompute()
            self.total_transferred += amount - max(remaining, 0.0)
        return self.sim.now - start
