"""Lightweight tracing and statistics collection.

The benchmark harness needs per-phase latency distributions (max, mean,
percentiles) over thousands of simulated processes; :class:`StatSeries`
accumulates samples cheaply and summarizes them with numpy.
:class:`Tracer` records (time, category, payload) tuples for debugging
and for determinism fingerprints in tests.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Iterable, Optional

import numpy as np

__all__ = ["StatSeries", "Summary", "Tracer"]


@dataclass(frozen=True)
class Summary:
    """Summary statistics over one latency series (seconds)."""

    count: int
    max: float
    min: float
    mean: float
    p50: float
    p95: float
    p99: float

    def as_dict(self) -> dict[str, float]:
        """Plain-dict form for tabular printing / JSON dumps."""
        return {
            "count": self.count, "max": self.max, "min": self.min,
            "mean": self.mean, "p50": self.p50, "p95": self.p95,
            "p99": self.p99,
        }


class StatSeries:
    """An append-only series of float samples with numpy summarization."""

    __slots__ = ("name", "_samples")

    def __init__(self, name: str = ""):
        self.name = name
        self._samples: list[float] = []

    def add(self, value: float) -> None:
        """Record one sample."""
        self._samples.append(float(value))

    def extend(self, values: Iterable[float]) -> None:
        """Record many samples."""
        self._samples.extend(float(v) for v in values)

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def values(self) -> np.ndarray:
        """Samples as a numpy array (copy)."""
        return np.asarray(self._samples, dtype=np.float64)

    def summary(self) -> Summary:
        """Summarize; raises ``ValueError`` on an empty series."""
        if not self._samples:
            raise ValueError(f"no samples in series {self.name!r}")
        arr = self.values
        return Summary(
            count=int(arr.size),
            max=float(arr.max()),
            min=float(arr.min()),
            mean=float(arr.mean()),
            p50=float(np.percentile(arr, 50)),
            p95=float(np.percentile(arr, 95)),
            p99=float(np.percentile(arr, 99)),
        )


class Tracer:
    """Ring-buffered event trace.

    ``capacity`` bounds memory during huge runs; ``None`` keeps
    everything (useful in unit tests asserting exact sequences).
    """

    def __init__(self, capacity: Optional[int] = None):
        self.capacity = capacity
        self._records: list[tuple[float, str, Any]] = []
        self.enabled = True

    def record(self, t: float, category: str, payload: Any = None) -> None:
        """Append a trace record (no-op when disabled)."""
        if not self.enabled:
            return
        self._records.append((t, category, payload))
        if self.capacity is not None and len(self._records) > self.capacity:
            del self._records[: len(self._records) - self.capacity]

    def records(self, category: Optional[str] = None) -> list[tuple[float, str, Any]]:
        """All records, optionally filtered by category."""
        if category is None:
            return list(self._records)
        return [r for r in self._records if r[1] == category]

    def fingerprint(self) -> str:
        """Order-sensitive digest of the trace — equal traces, equal
        digest.  Uses sha1 rather than the builtin ``hash()`` so the
        value is stable across processes (``hash()`` of strings is
        randomized per-interpreter by ``PYTHONHASHSEED``) and can be
        recorded or compared between runs.
        """
        h = hashlib.sha1()
        for t, cat, payload in self._records:
            h.update(f"{round(t, 12)!r}|{cat}|{payload!r}\n".encode())
        return h.hexdigest()

    def clear(self) -> None:
        """Drop all records."""
        self._records.clear()
