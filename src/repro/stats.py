"""``python -m repro.stats`` — report/validate exported observability JSON.

Two document kinds are produced by the KAP driver (``--stats-out`` /
``--trace-out``) and the chaos harness:

- **stats**: ``{"meta": {...}, "aggregate": <snapshot>,
  "per_rank": [<snapshot>, ...]}`` where a *snapshot* is a
  :meth:`repro.obs.MetricsRegistry.snapshot` dict;
- **trace**: Chrome trace-event JSON (``{"traceEvents": [...]}``,
  Perfetto-loadable) from :meth:`repro.obs.SpanTracer.to_chrome_trace`.

Subcommands::

    python -m repro.stats report  STATS.json          # human summary
    python -m repro.stats report  --prometheus STATS.json
    python -m repro.stats validate --kind stats STATS.json
    python -m repro.stats validate --kind trace TRACE.json

``validate`` exits non-zero listing every schema violation (and, for
traces, any span whose parent does not resolve) — the CI stats-smoke
job gates on it.  Validation is hand-rolled: no external schema
library is required.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any

from .obs.metrics import histogram_from_snapshot, snapshot_to_prometheus

__all__ = ["validate_stats", "validate_trace", "render_report", "main"]

_METRIC_TYPES = ("counter", "gauge", "histogram")


def _is_num(x: Any) -> bool:
    return isinstance(x, (int, float)) and not isinstance(x, bool)


def _check_metric(m: Any, where: str, problems: list) -> None:
    if not isinstance(m, dict):
        problems.append(f"{where}: metric is not an object")
        return
    name = m.get("name")
    if not isinstance(name, str) or not name:
        problems.append(f"{where}: missing/invalid metric name")
        return
    where = f"{where}:{name}"
    mtype = m.get("type")
    if mtype not in _METRIC_TYPES:
        problems.append(f"{where}: type {mtype!r} not in {_METRIC_TYPES}")
        return
    if not isinstance(m.get("labels"), dict):
        problems.append(f"{where}: labels must be an object")
    if mtype in ("counter", "gauge"):
        if not _is_num(m.get("value")):
            problems.append(f"{where}: non-numeric value")
        return
    bounds = m.get("bounds")
    buckets = m.get("buckets")
    if (not isinstance(bounds, list) or not all(map(_is_num, bounds))
            or any(b <= a for b, a in zip(bounds[1:], bounds))):
        problems.append(f"{where}: bounds must be ascending numbers")
        return
    if (not isinstance(buckets, list) or len(buckets) != len(bounds) + 1
            or not all(isinstance(b, int) and b >= 0 for b in buckets)):
        problems.append(f"{where}: buckets must be len(bounds)+1 "
                        f"non-negative ints")
        return
    if m.get("count") != sum(buckets):
        problems.append(f"{where}: count {m.get('count')} != bucket sum "
                        f"{sum(buckets)}")
    if not _is_num(m.get("sum")):
        problems.append(f"{where}: non-numeric sum")


def _check_snapshot(snap: Any, where: str, problems: list) -> None:
    if not isinstance(snap, dict):
        problems.append(f"{where}: snapshot is not an object")
        return
    if not isinstance(snap.get("labels"), dict):
        problems.append(f"{where}: missing labels object")
    metrics = snap.get("metrics")
    if not isinstance(metrics, list):
        problems.append(f"{where}: missing metrics list")
        return
    for i, m in enumerate(metrics):
        _check_metric(m, f"{where}.metrics[{i}]", problems)


#: Legal cluster/broker health states (plus "unknown" before the
#: first completed reduction).
_HEALTH_STATES = ("ok", "degraded", "overloaded", "unknown")

#: Numeric fields every completed health view must carry.
_HEALTH_VIEW_NUMS = ("epoch", "t", "brokers", "inbox_sum", "inbox_max",
                     "pending_max", "retry_amp_max", "dirty_sum",
                     "respawn_sum")


def _check_health_view(view: Any, where: str, problems: list) -> None:
    if not isinstance(view, dict):
        problems.append(f"{where}: view is not an object")
        return
    state = view.get("state")
    if state not in _HEALTH_STATES:
        problems.append(f"{where}: state {state!r} not in "
                        f"{_HEALTH_STATES}")
    if view.get("epoch") == -1:
        return          # placeholder view (plane never activated)
    for fld in _HEALTH_VIEW_NUMS:
        if not _is_num(view.get(fld)):
            problems.append(f"{where}: non-numeric {fld}")
    counts = view.get("counts")
    if not isinstance(counts, dict):
        problems.append(f"{where}: counts must be an object")
        return
    for k, v in counts.items():
        if k not in _HEALTH_STATES:
            problems.append(f"{where}: counts key {k!r} not a state")
        if not isinstance(v, int) or v < 0:
            problems.append(f"{where}: counts[{k}] must be a "
                            f"non-negative int")
    brokers = view.get("brokers")
    if _is_num(brokers) and sum(counts.values()) != brokers:
        problems.append(f"{where}: counts sum {sum(counts.values())} "
                        f"!= brokers {brokers}")


def _check_health(health: Any, problems: list) -> None:
    if not isinstance(health, dict):
        problems.append("health: not an object")
        return
    _check_health_view(health.get("cluster"), "health.cluster", problems)
    views = health.get("views")
    if views is None:
        return
    if not isinstance(views, list):
        problems.append("health.views: not a list")
        return
    last = None
    for i, view in enumerate(views):
        _check_health_view(view, f"health.views[{i}]", problems)
        epoch = view.get("epoch") if isinstance(view, dict) else None
        if _is_num(epoch):
            if last is not None and epoch <= last:
                problems.append(f"health.views[{i}]: epoch {epoch} "
                                f"not increasing (prev {last})")
            last = epoch


def validate_stats(doc: Any) -> list:
    """Structural check of a stats document; returns problems found."""
    problems: list = []
    if not isinstance(doc, dict):
        return ["top level: not an object"]
    if not isinstance(doc.get("meta"), dict):
        problems.append("meta: missing object")
    _check_snapshot(doc.get("aggregate"), "aggregate", problems)
    per_rank = doc.get("per_rank")
    if per_rank is not None:
        if not isinstance(per_rank, list):
            problems.append("per_rank: not a list")
        else:
            for i, snap in enumerate(per_rank):
                _check_snapshot(snap, f"per_rank[{i}]", problems)
    if "health" in doc:
        _check_health(doc["health"], problems)
    return problems


def validate_trace(doc: Any) -> list:
    """Structural + causal check of a Chrome trace-event document.

    Beyond field shapes, verifies the span forest: within each
    ``trace_id``, exactly one root (``parent_id`` null) and every
    non-null ``parent_id`` resolving to a span of the same trace.
    """
    problems: list = []
    if not isinstance(doc, dict):
        return ["top level: not an object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents: missing list"]
    by_trace: dict = {}
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if not isinstance(ev.get("name"), str):
            problems.append(f"{where}: missing name")
        if ph == "M":
            continue  # metadata record
        if ph != "X":
            problems.append(f"{where}: unexpected phase {ph!r}")
            continue
        for fld in ("ts", "dur"):
            if not _is_num(ev.get(fld)):
                problems.append(f"{where}: non-numeric {fld}")
        if ev.get("dur", 0) < 0:
            problems.append(f"{where}: negative dur")
        args = ev.get("args")
        if not isinstance(args, dict) or "span_id" not in args:
            problems.append(f"{where}: missing args.span_id")
            continue
        tid = args.get("trace_id")
        by_trace.setdefault(tid, []).append(args)
    for tid, spans in sorted(by_trace.items(), key=lambda kv: str(kv[0])):
        ids = {s["span_id"] for s in spans}
        roots = [s for s in spans if s.get("parent_id") is None]
        if len(roots) != 1:
            problems.append(f"trace {tid}: {len(roots)} roots (expect 1)")
        for s in spans:
            parent = s.get("parent_id")
            if parent is not None and parent not in ids:
                problems.append(f"trace {tid}: span {s['span_id']} parent "
                                f"{parent} unresolved")
    return problems


def render_report(doc: dict) -> str:
    """Human-readable summary of a stats document's aggregate."""
    lines: list = []
    meta = doc.get("meta", {})
    if meta:
        lines.append("meta: " + ", ".join(f"{k}={meta[k]}"
                                          for k in sorted(meta)))
    agg = doc.get("aggregate", {})
    counters: list = []
    hists: list = []
    for m in agg.get("metrics", ()):
        labels = ",".join(f"{k}={v}" for k, v in
                          sorted(m.get("labels", {}).items()))
        label = m["name"] + (f"{{{labels}}}" if labels else "")
        if m["type"] in ("counter", "gauge"):
            counters.append((label, m["value"]))
        else:
            h = histogram_from_snapshot(m)
            if h.count == 0:
                continue
            hists.append((label, h))
    width = max((len(n) for n, _ in counters), default=0)
    for name, value in counters:
        v = f"{value:g}" if isinstance(value, float) else str(value)
        lines.append(f"  {name:<{width}}  {v}")
    for name, h in hists:
        lines.append(f"  {name}: count={h.count} mean={h.mean:.3g} "
                     f"p50={h.quantile(0.5):.3g} "
                     f"p95={h.quantile(0.95):.3g} "
                     f"p99={h.quantile(0.99):.3g} max={h.vmax:.3g}")
    nranks = len(doc.get("per_rank") or ())
    if nranks:
        lines.append(f"  ({nranks} per-rank snapshots in document)")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.stats",
        description="Report on / validate exported stats and trace JSON.")
    sub = parser.add_subparsers(dest="cmd", required=True)
    p_report = sub.add_parser("report", help="summarize a stats document")
    p_report.add_argument("file")
    p_report.add_argument("--prometheus", action="store_true",
                          help="emit the aggregate in Prometheus text "
                               "format instead of the summary table")
    p_val = sub.add_parser("validate", help="schema-check a document")
    p_val.add_argument("file")
    p_val.add_argument("--kind", choices=("stats", "trace"),
                       default="stats")
    args = parser.parse_args(argv)

    with open(args.file, "r", encoding="utf-8") as fh:
        doc = json.load(fh)

    if args.cmd == "report":
        problems = validate_stats(doc)
        if problems:
            for p in problems:
                print(f"invalid stats document: {p}", file=sys.stderr)
            return 1
        if args.prometheus:
            print(snapshot_to_prometheus(doc["aggregate"]), end="")
        else:
            print(render_report(doc))
        return 0

    problems = (validate_trace(doc) if args.kind == "trace"
                else validate_stats(doc))
    if problems:
        for p in problems:
            print(p, file=sys.stderr)
        print(f"{args.file}: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    print(f"{args.file}: OK ({args.kind})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
