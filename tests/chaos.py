"""Chaos harness: a KAP-style KVS workload under seeded faults.

The entry point :func:`run_chaos_workload` builds a session on a
binary tree, installs a seeded :class:`~repro.sim.faults.FaultPlan`
(probabilistic drop/duplication/extra delay per link), optionally
kills interior brokers mid-run, and drives a fence-synchronized
put/get workload with client-level retries enabled.

After the workload drains it verifies *convergence*:

- every put/commit/fence a client saw acknowledged is readable at
  the lowest surviving rank over a clean fabric (the fault plan is
  removed for the verification pass);
- no hung waiters remain anywhere (held fences, version waiters,
  outstanding client RPCs on live brokers);
- every process finished without error.

The returned :class:`ChaosReport` also carries the recovery/retry
telemetry the chaos benchmarks tabulate.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Optional

from repro import make_cluster, standard_session
from repro.kvs import KvsClient
from repro.obs.postmortem import capture_bundle, write_bundle
from repro.sim import FaultPlan

__all__ = ["ChaosReport", "JobChaosReport", "run_chaos_workload",
           "run_job_chaos_workload"]


def _maybe_postmortem(session, *, kind: str, out: Optional[str],
                      triggers: list[str], default_name: str,
                      extra: Optional[dict] = None) -> str:
    """Write a post-mortem bundle when asked or when a trigger fired.

    ``out`` (explicit path) always captures — the caller asked.  With
    only ``CHAOS_POSTMORTEM_DIR`` set (CI), a bundle is written iff at
    least one trigger fired, named ``default_name`` under that dir.
    Returns the written path ("" = none).
    """
    env_dir = os.environ.get("CHAOS_POSTMORTEM_DIR", "")
    if out is None and not (env_dir and triggers):
        return ""
    reason = "; ".join(triggers) if triggers else "requested by caller"
    bundle = capture_bundle(session, reason, kind=kind, extra=extra)
    path = out if out is not None else os.path.join(env_dir,
                                                   default_name)
    return write_bundle(bundle, path)


@dataclass
class ChaosReport:
    """Outcome + telemetry of one chaos run."""

    converged: bool                 # procs ok + reads verified + no hangs
    procs_ok: bool                  # every workload process finished clean
    reads_verified: int             # acked writes re-read successfully
    reads_failed: int               # acked writes missing/mismatched
    hung_waiters: int               # leftover held fences/version waiters
    client_retries: int             # RPC attempts re-issued by clients
    client_rpcs: int                # logical client RPCs issued
    broker_stats: dict = field(default_factory=dict)
    fault_stats: dict = field(default_factory=dict)
    detect_latency: float = 0.0     # kill -> last live.down at rank 0
    makespan: float = 0.0           # last workload process completion
    errors: list = field(default_factory=list)
    #: Runtime-sanitizer findings (``sanitize=True`` runs only).
    sanitizer_findings: list = field(default_factory=list)
    #: Event-stream SHA1 (``sanitize=True`` runs only) — same-seed
    #: replay must reproduce it bit for bit.
    event_fingerprint: str = ""
    #: Post-mortem bundle written for this run ("" = none).
    postmortem_path: str = ""

    @property
    def retry_amplification(self) -> float:
        """Extra sends per logical client RPC: client re-attempts plus
        broker-level retransmissions/reroutes, normalized by the
        number of logical RPCs (0.0 in a fault-free run)."""
        extra = (self.client_retries
                 + self.broker_stats.get("retransmits", 0)
                 + self.broker_stats.get("reroutes", 0))
        return extra / max(1, self.client_rpcs)


def run_chaos_workload(n_nodes: int = 31, n_clients: int = 16,
                       seed: int = 7, fault_seed: int = 11,
                       drop_rate: float = 0.01, dup_rate: float = 0.0,
                       delay_rate: float = 0.0,
                       kill_ranks: tuple = (), kill_at: float = 0.25,
                       kill_stagger: float = 0.5,
                       hb_period: float = 0.05, n_iters: int = 2,
                       iter_gap: float = 0.0,
                       timeout: float = 0.5, retries: int = 8,
                       run_until: float = 60.0,
                       trace_out: Optional[str] = None,
                       stats_out: Optional[str] = None,
                       sanitize: bool = False,
                       kvs_replicas: tuple = (),
                       kvs_dedup: bool = False,
                       postmortem_out: Optional[str] = None
                       ) -> ChaosReport:
    """Run the chaos workload; see module docstring.

    ``trace_out``/``stats_out`` export the causal span trees (Chrome
    trace-event JSON — one tree per client RPC, including retries,
    retransmissions and reroutes) and the merged per-broker metrics
    registries.  Pure exports: leaving them ``None`` changes nothing.

    ``kill_ranks`` are failed one by one starting at ``kill_at``
    (``kill_stagger`` apart), so cascades like "kill a parent, then
    its replacement" are expressible.  Clients are placed round-robin
    on ranks that are never killed.

    ``iter_gap`` inserts a per-client think time between iterations
    (skewed per client, so fence contributions trickle in over the
    gap): without it a small workload finishes in milliseconds and a
    mid-run kill would land after the last fence instead of across it.

    ``kvs_replicas`` enables multi-master failover: the named ranks
    hold standby replicas of the KVS root master, and killing rank 0
    (the root) becomes survivable — the ring election promotes the
    most-caught-up replica and the workload converges against it.
    """
    cluster = make_cluster(n_nodes, seed=seed)
    plan = FaultPlan(seed=fault_seed, drop_rate=drop_rate,
                     dup_rate=dup_rate, delay_rate=delay_rate)
    cluster.network.fault_plan = plan
    session = standard_session(
        cluster, with_heartbeat=True, hb_period=hb_period,
        hb_max_epochs=max(64, int(run_until / hb_period)),
        kvs_replicas=kvs_replicas, kvs_dedup=kvs_dedup)
    session.start()
    if trace_out:
        session.enable_tracing()
    sim = cluster.sim
    fingerprint = None
    if sanitize:
        from repro.analysis.sanitizers import replay_fingerprint_hook
        session.enable_sanitizers()
        fingerprint = replay_fingerprint_hook(sim, keep_records=False)

    # Detection telemetry: when the lowest surviving rank hears each
    # live.down (rank 0 itself may be on the kill list).
    obs_rank = min(r for r in range(n_nodes) if r not in set(kill_ranks))
    detect_times: dict[int, float] = {}
    session.brokers[obs_rank].subscribe(
        "live.down",
        lambda msg: detect_times.setdefault(msg.payload["rank"], sim.now))

    for i, victim in enumerate(kill_ranks):
        ev = sim.timeout(kill_at + i * kill_stagger)
        ev.add_callback(lambda _e, v=victim: session.fail_rank(v))

    client_ranks = [r for r in range(n_nodes) if r not in set(kill_ranks)]
    acked: list[tuple[str, object]] = []
    finish_times: list[float] = []
    handles = []
    errors: list[str] = []

    def client_proc(idx: int, rank: int):
        # Failures are recorded, not raised: an unhandled process
        # exception would abort sim.run() and take the whole harness
        # down with it instead of producing a non-converged report.
        try:
            handle = session.connect(rank)
            handles.append(handle)
            kvs = KvsClient(handle, timeout=timeout, retries=retries)
            for it in range(n_iters):
                key = f"chaos.k{it}.{idx}"
                yield kvs.put(key, [idx, it])
                yield kvs.fence(f"chaos.f{it}", n_clients)
                acked.append((key, [idx, it]))
                peer = (idx + 1) % n_clients
                got = yield kvs.get(f"chaos.k{it}.{peer}")
                if got != [peer, it]:
                    raise AssertionError(
                        f"client {idx} iter {it}: read {got!r}, "
                        f"expected {[peer, it]!r}")
                if iter_gap > 0.0:
                    yield sim.timeout(iter_gap * (1 + idx / n_clients))
            yield kvs.put(f"chaos.c.{idx}", idx)
            yield kvs.commit()
            acked.append((f"chaos.c.{idx}", idx))
        except Exception as exc:  # noqa: BLE001 - tallied in the report
            errors.append(f"client {idx} (t={sim.now:.3f}): {exc}")
            return
        finish_times.append(sim.now)

    procs = [sim.spawn(client_proc(i, client_ranks[i % len(client_ranks)]),
                       name=f"chaos-client-{i}")
             for i in range(n_clients)]
    # Poll in slices so the run stops shortly after the workload drains
    # instead of simulating every remaining heartbeat epoch.
    while sim.now < run_until and not all(p.triggered for p in procs):
        sim.run(until=min(run_until, sim.now + 0.5))
    sim.run(until=sim.now + 1.0)  # settle in-flight bookkeeping

    for i, p in enumerate(procs):
        if not p.triggered:
            errors.append(f"client {i}: hung")
        elif not p.ok:
            try:
                p.value
            except Exception as exc:  # noqa: BLE001 - reporting
                errors.append(f"client {i}: {exc}")
    procs_ok = not errors
    makespan = max(finish_times) if finish_times else sim.now
    detect_latency = (max(detect_times.get(v, sim.now)
                          for v in kill_ranks) - kill_at
                      if kill_ranks else 0.0)

    # Hung-waiter census on live brokers: a converged run leaves no
    # held fence requests, no version waiters, and no outstanding
    # client RPCs behind.
    hung = 0
    for broker in session.brokers:
        if not broker.alive:
            continue
        kvs_mod = broker.modules.get("kvs")
        if kvs_mod is not None:
            hung += len(kvs_mod._version_waiters)
            hung += sum(len(agg.held) for agg in kvs_mod._fences.values())
            hung += len(kvs_mod._repl_waiters)
            hung += len(kvs_mod._fence_deferred)
    for handle in handles:
        hung += len(handle._waiters)

    client_retries = sum(h.retries for h in handles)
    client_rpcs = n_clients * (n_iters * 3 + 2)
    broker_stats = session.retry_stats()
    fault_stats = plan.stats()

    # Post-mortem capture happens *here* — after the hung-waiter
    # census, before the clean-fabric verifier pollutes the rings.
    triggers = []
    if errors:
        triggers.append(f"{len(errors)} workload error(s)")
    if hung:
        triggers.append(f"{hung} hung waiter(s)")
    if session.terminal_errors:
        triggers.append(f"{len(session.terminal_errors)} terminal "
                        f"RpcError(s)")
    if kill_ranks:
        triggers.append(f"chaos kill of ranks {list(kill_ranks)}")
    postmortem_path = _maybe_postmortem(
        session, kind="chaos", out=postmortem_out, triggers=triggers,
        default_name=f"chaos-pm-s{seed}-f{fault_seed}.json",
        extra={"seed": seed, "fault_seed": fault_seed,
               "kill_ranks": list(kill_ranks),
               "drop_rate": drop_rate, "hung_waiters": hung,
               "errors": errors[:20]})

    # Verification pass over a clean fabric: everything the clients saw
    # acknowledged must be durable and readable at the root.
    cluster.network.fault_plan = None
    verified = [0, 0]

    def verifier():
        kvs = KvsClient(session.connect(obs_rank, collective=False),
                        timeout=10.0)
        for key, want in acked:
            try:
                got = yield kvs.get(key)
            except Exception:  # noqa: BLE001 - tallied below
                got = None
            if got == want:
                verified[0] += 1
            else:
                verified[1] += 1
                errors.append(f"verify {key!r}: read {got!r}, "
                              f"expected {want!r}")

    vproc = sim.spawn(verifier(), name="chaos-verifier")
    sim.run(until=sim.now + 20.0)
    if not vproc.triggered or not vproc.ok:
        errors.append("verifier did not complete")

    # Liveness-dependent snapshots (per-rank metrics, health views at
    # the acting root) must be taken before stop() marks every broker
    # dead.
    live_ranks = [r for r in range(n_nodes) if session.brokers[r].alive]
    root = session.acting_root()
    health = (session.brokers[root].modules.get("health")
              if root is not None else None)
    health_doc = ({"cluster": health.cluster_view(),
                   "views": list(health.views[-16:])}
                  if health is not None else None)
    session.stop()
    if trace_out:
        session.span_tracer.write_chrome_trace(trace_out)
    if stats_out:
        doc = {
            "meta": {"kind": "chaos", "n_nodes": n_nodes,
                     "n_clients": n_clients, "seed": seed,
                     "fault_seed": fault_seed,
                     "kill_ranks": list(kill_ranks),
                     "sim_time": sim.now},
            "aggregate": session.metrics_aggregate(),
            "per_rank": [session.metrics_snapshot(r)
                         for r in live_ranks],
        }
        if health_doc is not None:
            doc["health"] = health_doc
        with open(stats_out, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=1, sort_keys=True)
            fh.write("\n")
    converged = (procs_ok and verified[1] == 0 and hung == 0
                 and vproc.triggered and vproc.ok)
    return ChaosReport(
        converged=converged, procs_ok=procs_ok,
        reads_verified=verified[0], reads_failed=verified[1],
        hung_waiters=hung, client_retries=client_retries,
        client_rpcs=client_rpcs, broker_stats=broker_stats,
        fault_stats=fault_stats, detect_latency=detect_latency,
        makespan=makespan, errors=errors,
        sanitizer_findings=(list(session.sanitizers.finish())
                            if sanitize else []),
        event_fingerprint=fingerprint.digest() if sanitize else "",
        postmortem_path=postmortem_path)


# ----------------------------------------------------------------------
# job-plane chaos: a wexec bulk launch under node loss
# ----------------------------------------------------------------------
@dataclass
class JobChaosReport:
    """Outcome + telemetry of one job-plane chaos run."""

    converged: bool                 # completed exactly once, no hangs
    completed: bool                 # a wexec.done event was observed
    status: str                     # terminal status ("ok"/"failed"/"lost"/"")
    exactly_once: bool              # full rc set, each taskrank once
    lost: bool                      # a wexec.lost event was observed
    rcs_expected: int               # nprocs
    rcs_got: int                    # distinct taskranks in the done tally
    stdout_verified: int            # per-task stdout records re-read OK
    stdout_failed: int              # per-task stdout records missing/bad
    respawns: int                   # tasks re-executed after node loss
    hung_waiters: int               # leftover waiters on live brokers
    client_retries: int             # launch-RPC attempts re-issued
    client_rpcs: int                # logical client RPCs issued
    broker_stats: dict = field(default_factory=dict)
    fault_stats: dict = field(default_factory=dict)
    detect_latency: float = 0.0     # kill -> last live.down at obs rank
    recovery_latency: float = 0.0   # kill -> job terminal event
    makespan: float = 0.0           # launch -> terminal event
    errors: list = field(default_factory=list)
    sanitizer_findings: list = field(default_factory=list)
    event_fingerprint: str = ""
    #: Post-mortem bundle written for this run ("" = none).
    postmortem_path: str = ""

    @property
    def retry_amplification(self) -> float:
        """Extra sends per task.  The job plane issues a single client
        RPC no matter how wide the job is, so unlike ``ChaosReport``
        the meaningful unit of work here is the task: recovery traffic
        (client re-attempts, broker retransmissions, reroutes) divided
        by the task count."""
        extra = (self.client_retries
                 + self.broker_stats.get("retransmits", 0)
                 + self.broker_stats.get("reroutes", 0))
        return extra / max(1, self.rcs_expected)


def run_job_chaos_workload(n_nodes: int = 31, nprocs: int = 24,
                           seed: int = 7, fault_seed: int = 11,
                           drop_rate: float = 0.01,
                           kill_ranks: tuple = (), kill_at: float = 0.3,
                           kill_stagger: float = 0.5,
                           hb_period: float = 0.05,
                           task_work: float = 1.0,
                           max_restarts: int = 2,
                           respawn_backoff: float = 0.05,
                           timeout: float = 0.5, retries: int = 8,
                           run_until: float = 60.0,
                           trace_out: Optional[str] = None,
                           sanitize: bool = False,
                           kvs_replicas: tuple = (),
                           postmortem_out: Optional[str] = None
                           ) -> JobChaosReport:
    """Drive one ``wexec`` bulk launch across every rank while
    ``kill_ranks`` die mid-run, then verify the exactly-once contract:

    - the job reaches a terminal state (``wexec.done`` — or
      ``wexec.lost`` once a task's ``max_restarts`` budget runs out)
      instead of hanging;
    - the completion tally carries the *full* rc set — every taskrank
      exactly once, even though tasks on dead nodes were respawned and
      falsely-buried incarnations may race their replacements;
    - each task's stdout is durable in the KVS over a clean fabric.

    ``task_work`` should comfortably exceed ``kill_at`` so the kills
    land mid-task (tasks on the victims die *running* and must be
    respawned, the hard case) rather than after the tally closed.
    """
    cluster = make_cluster(n_nodes, seed=seed)
    plan = FaultPlan(seed=fault_seed, drop_rate=drop_rate)
    cluster.network.fault_plan = plan

    def chaos_task(ctx):
        ctx.print(f"{ctx.jobid}:{ctx.taskrank}")
        yield ctx.sim.timeout(task_work)

    session = standard_session(
        cluster, with_heartbeat=True, hb_period=hb_period,
        hb_max_epochs=max(64, int(run_until / hb_period)),
        task_registry={"chaos": chaos_task},
        kvs_replicas=kvs_replicas,
        wexec_config={"max_restarts": max_restarts,
                      "respawn_backoff": respawn_backoff})
    session.start()
    sim = cluster.sim
    if trace_out:
        session.enable_tracing()
    fingerprint = None
    if sanitize:
        from repro.analysis.sanitizers import replay_fingerprint_hook
        session.enable_sanitizers()
        fingerprint = replay_fingerprint_hook(sim, keep_records=False)

    jobid = "lwj-chaos"
    obs_rank = min(r for r in range(n_nodes) if r not in set(kill_ranks))
    detect_times: dict[int, float] = {}
    terminal: list[tuple[str, dict, float]] = []  # (topic, payload, t)
    obs = session.brokers[obs_rank]
    obs.subscribe("live.down",
                  lambda msg: detect_times.setdefault(
                      msg.payload["rank"], sim.now))
    obs.subscribe("wexec.done",
                  lambda msg: terminal.append(("done", msg.payload,
                                               sim.now))
                  if msg.payload.get("jobid") == jobid else None)
    obs.subscribe("wexec.lost",
                  lambda msg: terminal.append(("lost", msg.payload,
                                               sim.now))
                  if msg.payload.get("jobid") == jobid else None)

    for i, victim in enumerate(kill_ranks):
        ev = sim.timeout(kill_at + i * kill_stagger)
        ev.add_callback(lambda _e, v=victim: session.fail_rank(v))

    errors: list[str] = []
    handles = []
    launch_t = [0.0]

    def launcher():
        try:
            handle = session.connect(obs_rank, collective=False)
            handles.append(handle)
            launch_t[0] = sim.now
            yield handle.rpc("wexec.run",
                             {"jobid": jobid, "task": "chaos",
                              "nprocs": nprocs},
                             timeout=timeout, retries=retries)
        except Exception as exc:  # noqa: BLE001 - tallied in the report
            errors.append(f"launcher (t={sim.now:.3f}): {exc}")

    lproc = sim.spawn(launcher(), name="job-chaos-launcher")
    while sim.now < run_until and not terminal:
        sim.run(until=min(run_until, sim.now + 0.5))
    sim.run(until=sim.now + 1.0)  # settle in-flight bookkeeping

    if not lproc.triggered:
        errors.append("launcher: hung")
    if not terminal:
        errors.append(f"job never reached a terminal state "
                      f"(t={sim.now:.3f})")

    topic, payload, term_t = terminal[0] if terminal else ("", {}, sim.now)
    completed = topic == "done"
    lost = any(t == "lost" for t, _p, _at in terminal)
    # wexec.done carries the max rc as "status"; render terminal state
    # as a string for the report ("ok" / "rc=N" / "lost").
    if completed:
        status = "ok" if payload.get("status", 0) == 0 \
            else f"rc={payload['status']}"
    else:
        status = "lost" if lost else ""
    rcs = payload.get("rcs", {}) if completed else {}
    got_ranks = {int(t) for t in rcs}
    exactly_once = (completed
                    and len(terminal) == 1
                    and len(rcs) == nprocs
                    and got_ranks == set(range(nprocs)))
    if completed and not exactly_once:
        errors.append(f"tally not exactly-once: {len(terminal)} terminal "
                      f"events, {sorted(got_ranks)} of {nprocs} taskranks")

    detect_latency = (max(detect_times.get(v, sim.now)
                          for v in kill_ranks) - kill_at
                      if kill_ranks else 0.0)
    recovery_latency = max(0.0, term_t - kill_at) if kill_ranks else 0.0
    respawns = sum(b.modules["wexec"].respawns
                   for b in session.brokers if b.alive)

    hung = 0
    for broker in session.brokers:
        if not broker.alive:
            continue
        kvs_mod = broker.modules.get("kvs")
        if kvs_mod is not None:
            hung += len(kvs_mod._version_waiters)
            hung += sum(len(agg.held) for agg in kvs_mod._fences.values())
            hung += len(kvs_mod._repl_waiters)
            hung += len(kvs_mod._fence_deferred)
    for handle in handles:
        hung += len(handle._waiters)

    triggers = []
    if errors:
        triggers.append(f"{len(errors)} workload error(s)")
    if not terminal:
        triggers.append("job never reached a terminal state")
    if lost:
        triggers.append(f"job {jobid!r} declared lost")
    if hung:
        triggers.append(f"{hung} hung waiter(s)")
    if session.terminal_errors:
        triggers.append(f"{len(session.terminal_errors)} terminal "
                        f"RpcError(s)")
    if kill_ranks:
        triggers.append(f"chaos kill of ranks {list(kill_ranks)}")
    postmortem_path = _maybe_postmortem(
        session, kind="job-chaos", out=postmortem_out,
        triggers=triggers,
        default_name=f"job-chaos-pm-s{seed}-f{fault_seed}.json",
        extra={"seed": seed, "fault_seed": fault_seed,
               "kill_ranks": list(kill_ranks), "jobid": jobid,
               "nprocs": nprocs, "max_restarts": max_restarts,
               "hung_waiters": hung, "errors": errors[:20]})

    # Verification pass over a clean fabric: every completed task's
    # stdout must be durable and readable at the observation rank.
    cluster.network.fault_plan = None
    verified = [0, 0]

    def verifier():
        kvs = KvsClient(session.connect(obs_rank, collective=False),
                        timeout=10.0)
        for taskrank in sorted(got_ranks):
            key = f"lwj.{jobid}.{taskrank}.stdout"
            try:
                got = yield kvs.get(key)
            except Exception:  # noqa: BLE001 - tallied below
                got = None
            if got == [f"{jobid}:{taskrank}"]:
                verified[0] += 1
            else:
                verified[1] += 1
                errors.append(f"verify {key!r}: read {got!r}")

    vproc = sim.spawn(verifier(), name="job-chaos-verifier")
    sim.run(until=sim.now + 20.0)
    if not vproc.triggered or not vproc.ok:
        errors.append("stdout verifier did not complete")

    client_retries = sum(h.retries for h in handles)
    broker_stats = session.retry_stats()
    fault_stats = plan.stats()
    session.stop()
    if trace_out:
        session.span_tracer.write_chrome_trace(trace_out)
    converged = (completed and exactly_once and verified[1] == 0
                 and hung == 0 and vproc.triggered and vproc.ok
                 and not errors)
    return JobChaosReport(
        converged=converged, completed=completed, status=status,
        exactly_once=exactly_once, lost=lost,
        rcs_expected=nprocs, rcs_got=len(got_ranks),
        stdout_verified=verified[0], stdout_failed=verified[1],
        respawns=respawns, hung_waiters=hung,
        client_retries=client_retries, client_rpcs=1,
        broker_stats=broker_stats, fault_stats=fault_stats,
        detect_latency=detect_latency, recovery_latency=recovery_latency,
        makespan=max(0.0, term_t - launch_t[0]), errors=errors,
        sanitizer_findings=(list(session.sanitizers.finish())
                            if sanitize else []),
        event_fingerprint=fingerprint.digest() if sanitize else "",
        postmortem_path=postmortem_path)
