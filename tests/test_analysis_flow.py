"""Tests for the protocol-flow analyzer (repro.analysis.effects +
repro.analysis.flowgraph).

Every per-handler rule gets a positive fixture (the violation is
reported at the right line) and a negative fixture (the sanctioned
idiom passes); DEAD001 gets a two-module wait cycle vs. the exempt
tree-climb self-loop; plus a toy two-module protocol whose graph is
checked edge by edge, the registry drift cross-check, the noqa
syntax, the doctor cross-reference, and the repo-is-flow-clean gate
mirroring test_analysis_lint.py.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.analysis import FLOW_RULES, analyze_source, build_graph
from repro.analysis.flowgraph import to_dot, to_json

FIXTURE = "repro/cmb/modules/fixture.py"


def flow_rules_of(src):
    _summaries, findings = analyze_source(src, FIXTURE)
    return [f.rule for f in findings]


def summaries_of(src):
    summaries, _findings = analyze_source(src, FIXTURE)
    return summaries


# ---------------------------------------------------------------------------
# per-rule positive / negative fixtures
# ---------------------------------------------------------------------------

POSITIVE = {
    "REPLY001": (
        "class EchoModule:\n"
        "    name = 'echo'\n"
        "    def req_ping(self, msg):\n"
        "        if msg.payload.get('ok'):\n"
        "            self.respond(msg, {})\n"),
    "RETRY001": (
        "class QueueModule:\n"
        "    name = 'queue'\n"
        "    def req_push(self, msg):\n"
        "        self.broker.publish('queue.update', {})\n"
        "        self.respond(msg, error='busy', code='EAGAIN')\n"),
    "TIME001": (
        "class SyncModule:\n"
        "    name = 'sync'\n"
        "    def req_kick(self, msg):\n"
        "        self.respond(msg, {})\n"
        "    def _proc(self):\n"
        "        resp = yield self.broker.rpc_up('kvs.get',\n"
        "                                        {'key': 'x'})\n"),
    "BLOCK001": (
        "class FetchModule:\n"
        "    name = 'fetch'\n"
        "    def req_get(self, msg):\n"
        "        ev = self.broker.rpc_up('kvs.get', {'key': 'x'},\n"
        "                                self.broker.sim.now + 1.0)\n"
        "        self.respond(msg, {})\n"),
}

NEGATIVE = {
    "REPLY001": (
        "class EchoModule:\n"
        "    name = 'echo'\n"
        "    def req_ping(self, msg):\n"
        "        if msg.payload.get('ok'):\n"
        "            self.respond(msg, {})\n"
        "        else:\n"
        "            self.respond(msg, error='no', code='EINVAL')\n"),
    "RETRY001": (
        "class QueueModule:\n"
        "    name = 'queue'\n"
        "    def req_push(self, msg):\n"
        "        if self.full:\n"
        "            self.respond(msg, error='busy', code='EAGAIN')\n"
        "            return\n"
        "        self.broker.publish('queue.update', {})\n"
        "        self.respond(msg, {})\n"),
    "TIME001": (
        "class SyncModule:\n"
        "    name = 'sync'\n"
        "    def req_kick(self, msg):\n"
        "        self.respond(msg, {})\n"
        "    def _proc(self):\n"
        "        resp = yield self.broker.rpc_up(\n"
        "            'kvs.get', {'key': 'x'},\n"
        "            deadline=self.broker.sim.now + 5.0)\n"),
    "BLOCK001": (
        "class FetchModule:\n"
        "    name = 'fetch'\n"
        "    def req_get(self, msg):\n"
        "        self.broker.rpc_up_cb('kvs.get', {'key': 'x'},\n"
        "                              lambda r: self.respond(msg, {}))\n"),
}

#: Expected (line, substring-of-message) per positive fixture — the
#: acceptance criterion asks for detection at the right file:line.
POSITIVE_AT = {
    "REPLY001": (3, "some control-flow path"),
    "RETRY001": (5, "retryable"),
    "TIME001": (6, "deadline"),
    "BLOCK001": (4, "event-returning"),
}


@pytest.mark.parametrize("rule", sorted(POSITIVE))
def test_rule_fires_on_violation(rule):
    assert flow_rules_of(POSITIVE[rule]) == [rule]


@pytest.mark.parametrize("rule", sorted(POSITIVE))
def test_rule_fires_at_right_line(rule):
    _s, findings = analyze_source(POSITIVE[rule], FIXTURE)
    line, fragment = POSITIVE_AT[rule]
    assert findings[0].file == FIXTURE
    assert findings[0].line == line
    assert fragment in findings[0].message


@pytest.mark.parametrize("rule", sorted(NEGATIVE))
def test_rule_passes_sanctioned_idiom(rule):
    assert flow_rules_of(NEGATIVE[rule]) == []


def test_every_flow_rule_documented():
    for rule in list(POSITIVE) + ["DEAD001", "FLOW001"]:
        assert rule in FLOW_RULES


# ---------------------------------------------------------------------------
# reply-disposition semantics
# ---------------------------------------------------------------------------

def test_never_responding_handler_is_reported_as_never():
    src = ("class SinkModule:\n"
           "    name = 'sink'\n"
           "    def req_drop(self, msg):\n"
           "        self.count = self.count + 1\n")
    summaries, findings = analyze_source(src, FIXTURE)
    assert [f.rule for f in findings] == ["REPLY001"]
    assert "never responds" in findings[0].message
    assert summaries[0].reply == "never"


def test_deferred_reply_via_held_message_passes():
    # The barrier idiom: park the request, answer at the exit event.
    src = ("class HoldModule:\n"
           "    name = 'hold'\n"
           "    def req_enter(self, msg):\n"
           "        self.held.append(msg)\n")
    summaries, findings = analyze_source(src, FIXTURE)
    assert findings == []
    assert summaries[0].reply == "deferred"


def test_deferred_reply_via_spawned_proc_passes():
    src = ("class ProcModule:\n"
           "    name = 'proc'\n"
           "    def req_get(self, msg):\n"
           "        self.broker.sim.spawn(self._get_proc(msg))\n")
    assert flow_rules_of(src) == []


def test_raise_counts_as_an_answered_exit():
    # The dispatcher converts NoHandlerError into an ENOSYS response.
    src = ("class StrictModule:\n"
           "    name = 'strict'\n"
           "    def req_only_root(self, msg):\n"
           "        if self.is_root:\n"
           "            self.respond(msg, {})\n"
           "        else:\n"
           "            raise NoHandlerError('root only')\n")
    assert flow_rules_of(src) == []


def test_try_except_must_answer_the_error_path():
    bad = ("class IoModule:\n"
           "    name = 'io'\n"
           "    def req_load(self, msg):\n"
           "        try:\n"
           "            data = self.store.load()\n"
           "            self.respond(msg, {'data': data})\n"
           "        except KeyError:\n"
           "            self.errors = self.errors + 1\n")
    good = bad.replace("self.errors = self.errors + 1",
                       "self.respond(msg, error='gone', code='ENOENT')")
    assert flow_rules_of(bad) == ["REPLY001"]
    assert flow_rules_of(good) == []


def test_proxy_upstream_counts_as_reply():
    src = ("class FwdModule:\n"
           "    name = 'fwd'\n"
           "    def req_ask(self, msg):\n"
           "        self.proxy_upstream(msg)\n")
    summaries, findings = analyze_source(src, FIXTURE)
    assert findings == []
    # ... and models the self-loop send toward the upstream instance.
    sends = summaries[0].sends
    assert [s.topic for s in sends] == ["fwd.ask"]
    assert sends[0].waits


# ---------------------------------------------------------------------------
# effect-summary extraction details
# ---------------------------------------------------------------------------

def test_fstring_self_name_topics_resolve():
    src = ("class NsModule:\n"
           "    name = 'ns'\n"
           "    def req_pull(self, msg):\n"
           "        self.broker.rpc_parent_cb(f'{self.name}.sync', {},\n"
           "                                  lambda r: None)\n"
           "        self.respond(msg, {})\n"
           "    def req_sync(self, msg):\n"
           "        self.respond(msg, {})\n")
    pull = {s.method: s for s in summaries_of(src)}["req_pull"]
    assert [s.topic for s in pull.sends] == ["ns.sync"]


def test_wrapper_helper_topic_binds_at_call_site():
    src = ("class WrapModule:\n"
           "    name = 'wrap'\n"
           "    def req_go(self, msg):\n"
           "        self._fwd('kvs.put', {'key': 'a'})\n"
           "        self.respond(msg, {})\n"
           "    def _fwd(self, topic, payload):\n"
           "        self.broker.rpc_parent_cb(topic, payload,\n"
           "                                  lambda r: None)\n")
    go = {s.method: s for s in summaries_of(src)}["req_go"]
    assert [(s.topic, s.via) for s in go.sends] \
        == [("kvs.put", ("_fwd",))]


def test_raisable_codes_collected():
    src = ("class ErrModule:\n"
           "    name = 'err'\n"
           "    def req_do(self, msg):\n"
           "        if self.bad:\n"
           "            self.respond(msg, error='x', code='ENOENT')\n"
           "        else:\n"
           "            self.respond(msg, {})\n")
    assert summaries_of(src)[0].raises == ("ENOENT",)


def test_event_callback_summarized_from_subscription():
    src = ("class EvModule:\n"
           "    name = 'ev'\n"
           "    def start(self):\n"
           "        self.broker.subscribe('hb.pulse', self._on_pulse)\n"
           "    def _on_pulse(self, msg):\n"
           "        self.broker.publish('ev.tick', {})\n"
           "    def req_noop(self, msg):\n"
           "        self.respond(msg, {})\n")
    ev = {s.method: s for s in summaries_of(src)}["_on_pulse"]
    assert ev.kind == "event" and ev.topic == "hb.pulse"
    assert [s.topic for s in ev.sends] == ["ev.tick"]


def test_noqa_suppresses_flow_rules():
    src = POSITIVE["REPLY001"].replace(
        "def req_ping(self, msg):",
        "def req_ping(self, msg):  # repro: noqa[REPLY001]")
    assert flow_rules_of(src) == []
    other = POSITIVE["REPLY001"].replace(
        "def req_ping(self, msg):",
        "def req_ping(self, msg):  # repro: noqa[TIME001]")
    assert flow_rules_of(other) == ["REPLY001"]


# ---------------------------------------------------------------------------
# flow graph: toy two-module protocol
# ---------------------------------------------------------------------------

TOY = (
    "class FrontModule:\n"
    "    name = 'front'\n"
    "    def start(self):\n"
    "        self.broker.subscribe('back.done', self._on_done)\n"
    "    def req_submit(self, msg):\n"
    "        self.broker.rpc_up_cb('back.work', dict(msg.payload),\n"
    "                              lambda r: self.respond(msg, {}))\n"
    "    def _on_done(self, msg):\n"
    "        self.done = True\n"
    "\n"
    "class BackModule:\n"
    "    name = 'back'\n"
    "    def req_work(self, msg):\n"
    "        self.respond(msg, {})\n"
    "        self.broker.publish('back.done', {'n': 1})\n")


def toy_graph(tmp_path, source=TOY, **kw):
    (tmp_path / "toy.py").write_text(source)
    kw.setdefault("registry", {})
    kw.setdefault("event_topics", frozenset({"back.done"}))
    return build_graph([str(tmp_path)], **kw)


def test_toy_graph_nodes_and_edges(tmp_path):
    graph, findings = toy_graph(tmp_path)
    assert findings == []
    assert sorted(graph.handlers) == ["back.work", "front.submit"]
    kinds = {(e["src"], e["dst"]): e["kind"] for e in graph.edges}
    assert kinds[("front.submit", "back.work")] == "request"
    assert kinds[("back.work", "event:back.done")] == "event"
    assert kinds[("event:back.done", "front:_on_done")] == "deliver"
    assert graph.cycles == []
    assert graph.orphans == {"unpublished": [], "unconsumed": []}


def test_toy_graph_exports(tmp_path):
    graph, _ = toy_graph(tmp_path)
    dot = to_dot(graph)
    assert '"front.submit" -> "back.work"' in dot
    assert "cluster_front" in dot and "cluster_back" in dot
    doc = json.loads(to_json(graph))
    assert doc["handlers"]["back.work"]["reply"] == "always"
    assert doc["meta"]["handlers"] == 2


def test_dead001_cross_module_wait_cycle(tmp_path):
    src = (
        "class AlphaModule:\n"
        "    name = 'alpha'\n"
        "    def req_go(self, msg):\n"
        "        self.broker.rpc_up_cb('beta.go', {},\n"
        "                              lambda r: self.respond(msg, {}))\n"
        "\n"
        "class BetaModule:\n"
        "    name = 'beta'\n"
        "    def req_go(self, msg):\n"
        "        self.broker.rpc_up_cb('alpha.go', {},\n"
        "                              lambda r: self.respond(msg, {}))\n")
    graph, findings = toy_graph(tmp_path, src,
                                event_topics=frozenset())
    assert [f.rule for f in findings] == ["DEAD001"]
    assert "alpha.go" in findings[0].message
    assert graph.cycles == [["alpha.go", "beta.go"]]


def test_dead001_exempts_tree_climb_self_loop(tmp_path):
    # barrier.enter -> parent's barrier.enter is the sanctioned
    # aggregation idiom (terminates at the root by construction).
    src = (
        "class ClimbModule:\n"
        "    name = 'climb'\n"
        "    def req_enter(self, msg):\n"
        "        self.broker.rpc_parent_cb('climb.enter', {},\n"
        "                                  lambda r: self.respond(\n"
        "                                      msg, {}))\n")
    graph, findings = toy_graph(tmp_path, src,
                                event_topics=frozenset())
    assert findings == []
    assert graph.cycles == []


def test_orphan_topics_reported_only_on_request(tmp_path):
    topics = frozenset({"back.done", "ghost.event"})
    graph, findings = toy_graph(tmp_path, event_topics=topics)
    assert findings == []          # FLOW001 is opt-in
    assert graph.orphans["unpublished"] == ["ghost.event"]
    assert graph.orphans["unconsumed"] == ["ghost.event"]
    _graph, findings = toy_graph(tmp_path, event_topics=topics,
                                 include_orphans=True)
    assert {f.rule for f in findings} == {"FLOW001"}
    assert all(f.severity == "warning" for f in findings)


# ---------------------------------------------------------------------------
# repo gates: flow-clean, registry drift, CLI
# ---------------------------------------------------------------------------

def _pkg_path():
    import repro
    return os.path.dirname(os.path.abspath(repro.__file__))


def test_repo_source_is_flow_clean():
    # The acceptance criterion: zero findings over the shipped package.
    graph, findings = build_graph([_pkg_path()])
    assert findings == []
    assert len(graph.handlers) >= 40
    assert graph.cycles == []


def test_summaries_match_runtime_registry():
    # Single source of truth: the analyzer's handler set is exactly
    # what request_registry() derives for the dispatcher — a handler
    # renamed in source changes both sides together.
    from repro.cmb.modules import request_registry
    graph, _ = build_graph([_pkg_path()])
    registry_topics = {f"{mod}.{method}"
                       for mod, methods in request_registry().items()
                       for method in methods}
    assert set(graph.handlers) == registry_topics


def test_doctor_cross_references_flow_graph():
    from repro.obs.doctor import Doctor
    bundle = {
        "meta": {"retransmit_max": 3},
        "brokers": [{
            "rank": 0, "alive": True,
            "flight": {"records": []},
            "pending": [{"topic": "kvs.get", "msgid": 7, "plane": "tree",
                         "hop": 1, "hop_kind": "child", "attempts": 3,
                         "timer_armed": True}],
        }],
    }
    flow = {
        "handlers": {"kvs.get": {
            "cls": "KvsModule", "method": "req_get",
            "file": "src/repro/kvs/module.py", "line": 2051,
            "reply": "deferred", "flags": ["TIME001"]}},
        "cycles": [["kvs.get", "job.submit"]],
    }
    diag = Doctor([bundle], flow_graph=flow).diagnose()
    stalled = [f for f in diag["findings"]
               if f["pathology"] == "stalled-retransmission"]
    evidence = "\n".join(stalled[0]["evidence"])
    assert "KvsModule.req_get" in evidence
    assert "analyzer flagged this handler: TIME001" in evidence
    assert "wait cycle kvs.get -> job.submit" in evidence
    # Without a graph the diagnosis is unchanged (no static lines).
    plain = Doctor([bundle]).diagnose()
    assert "static flow" not in "\n".join(
        plain["findings"][0]["evidence"])


def test_cli_flow_strict_gate(tmp_path):
    from repro.analysis.__main__ import main
    bad = tmp_path / "bad.py"
    bad.write_text(POSITIVE["REPLY001"])
    assert main(["flow", "--strict", str(tmp_path)]) == 1
    assert main(["flow", str(tmp_path)]) == 0      # reports, no gate
    assert main(["flow", "--list-rules"]) == 0
    good = tmp_path / "good.py"
    bad.unlink()
    good.write_text(NEGATIVE["REPLY001"])
    dot = tmp_path / "g.dot"
    gjson = tmp_path / "g.json"
    assert main(["flow", "--strict", "--quiet", str(tmp_path),
                 "--dot", str(dot), "--graph-json", str(gjson)]) == 0
    assert "digraph flow" in dot.read_text()
    assert "echo.ping" in json.loads(gjson.read_text())["handlers"]


def test_cli_module_entrypoint():
    # `python -m repro.analysis flow --strict` on the shipped package
    # must exit 0 (the CI gate invocation, end to end).
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "flow", "--strict",
         "--quiet"],
        capture_output=True, text=True)
    assert proc.returncode == 0, proc.stdout + proc.stderr
