"""Tests for the AST linter (repro.analysis.lint).

Every rule gets a positive fixture (the violation is reported) and a
negative fixture (the sanctioned idiom passes); plus the noqa
suppression syntax, the DET003 core/non-core scoping, the registry
integration, and the CLI gate semantics.
"""

import subprocess
import sys

import pytest

from repro.analysis import RULES, lint_paths, lint_source
from repro.analysis.findings import (Finding, render_json, render_text,
                                     worst_severity)
from repro.analysis.lint import iter_python_files

CORE = "repro/sim/fixture.py"        # path inside the deterministic core
NONCORE = "repro/kap/fixture.py"     # outside the DET003 scope


def rules_of(src, filename=CORE, **kw):
    return [f.rule for f in lint_source(src, filename, **kw)]


# ---------------------------------------------------------------------------
# per-rule positive / negative fixtures
# ---------------------------------------------------------------------------

POSITIVE = {
    "DET001": "import time\nt = time.time()\n",
    "DET002": "import random\nx = random.randint(1, 6)\n",
    "DET003": "out = [x for x in {3, 1, 2}]\n",
    "PROTO001": "broker.rpc_up('kvs.frobnicate', {})\n",
    "PROTO002": "handle.publish('kvs.bogus_event', {})\n",
    "ERR001": "mod.respond(msg, error='x', code='EWHATEVER')\n",
    "EXC001": "try:\n    poke()\nexcept:\n    pass\n",
}

NEGATIVE = {
    "DET001": "t = sim.now\n",
    "DET002": "import random\nrng = random.Random(42)\nx = rng.random()\n",
    "DET003": "out = [x for x in sorted({3, 1, 2})]\n",
    "PROTO001": "broker.rpc_up('kvs.put', {'key': 'a', 'value': 1})\n",
    "PROTO002": "handle.publish('kvs.setroot', {})\n",
    "ERR001": "mod.respond(msg, error='x', code='ENOSYS')\n",
    "EXC001": "try:\n    poke()\nexcept ValueError:\n    pass\n",
}


@pytest.mark.parametrize("rule", sorted(POSITIVE))
def test_rule_fires_on_violation(rule):
    assert rules_of(POSITIVE[rule]) == [rule]


@pytest.mark.parametrize("rule", sorted(NEGATIVE))
def test_rule_passes_sanctioned_idiom(rule):
    assert rules_of(NEGATIVE[rule]) == []


def test_every_rule_documented():
    for rule in POSITIVE:
        assert rule in RULES


# ---------------------------------------------------------------------------
# DET rules: edge cases
# ---------------------------------------------------------------------------

def test_wallclock_variants_flagged():
    assert rules_of("import time\nx = time.monotonic()\n") == ["DET001"]
    assert rules_of("from datetime import datetime\n"
                    "d = datetime.now()\n") == ["DET001"]
    assert rules_of("from time import perf_counter\n") == ["DET001"]


def test_unseeded_random_variants_flagged():
    assert rules_of("import random\nrandom.seed(3)\n") == ["DET002"]
    assert rules_of("import random\nr = random.SystemRandom()\n") \
        == ["DET002"]
    assert rules_of("from random import shuffle\n") == ["DET002"]


def test_seeded_random_instance_ok():
    src = ("import random\n"
           "rng = random.Random(seed)\n"
           "rng.shuffle(items)\n"
           "y = rng.randint(0, 9)\n")
    assert rules_of(src) == []


def test_set_iteration_scoped_to_core():
    src = "for x in {1, 2}:\n    emit(x)\n"
    assert rules_of(src, CORE) == ["DET003"]
    assert rules_of(src, NONCORE) == []          # inferred from path
    assert rules_of(src, NONCORE, det_core=True) == ["DET003"]


def test_set_expression_shapes():
    assert rules_of("for x in set(items):\n    emit(x)\n") == ["DET003"]
    assert rules_of("for x in a | b:\n    pass\n") == []  # not provably sets
    assert rules_of("for x in set(a) - set(b):\n    pass\n") == ["DET003"]
    assert rules_of("out = {x for x in {1, 2}}\n") == ["DET003"]
    assert rules_of("for x in sorted(set(items)):\n    pass\n") == []


def test_det003_is_warning_not_error():
    findings = lint_source(POSITIVE["DET003"], CORE)
    assert findings[0].severity == "warning"
    assert worst_severity(findings) == "warning"


# ---------------------------------------------------------------------------
# PROTO rules: registry integration
# ---------------------------------------------------------------------------

def test_request_topics_match_runtime_registry():
    # These exist because the modules define req_ handlers; if a
    # handler is ever renamed, both the linter and the runtime ENOSYS
    # path change together (single source of truth).
    ok = ("h.rpc('kvs.commit', {})\n"
          "h.rpc('barrier.enter', {})\n"
          "h.rpc('live.status', {})\n")
    assert rules_of(ok) == []
    assert rules_of("h.rpc('kvs.comit', {})\n") == ["PROTO001"]
    assert rules_of("h.rpc('kvss.commit', {})\n") == ["PROTO001"]
    # A bare module head addresses the 'default' handler, which no
    # standard module implements -> runtime ENOSYS, caught here.
    assert rules_of("h.rpc('log', {})\n") == ["PROTO001"]


def test_rank_addressed_rpc_checks_second_arg():
    assert rules_of("b.rpc_rank(3, 'mon.sample', {})\n") == []
    assert rules_of("b.rpc_rank(3, 'mon.frob', {})\n") == ["PROTO001"]
    assert rules_of("b.rpc_hop_cb(2, 'kvs.flush', {}, cb)\n") == []


def test_fstring_topics():
    # Literal head, dynamic method: head must exist.
    assert rules_of("b.rpc_up(f'kvs.{m}', {})\n") == []
    assert rules_of("b.rpc_up(f'zzz.{m}', {})\n") == ["PROTO001"]
    # Dynamic head (sharded namespace), literal method: method must
    # exist somewhere.
    assert rules_of("c._rpc(f'{ns}.put', {})\n") == []
    assert rules_of("c._rpc(f'{ns}.frobnicate', {})\n") == ["PROTO001"]
    # Fully dynamic: skipped.
    assert rules_of("b.rpc_up(topic_var, {})\n") == []
    assert rules_of("b.rpc_up(f'{a}.{b}', {})\n") == []


def test_event_subscription_prefix_semantics():
    assert rules_of("h.subscribe('hb.', cb)\n") == []     # prefix of hb.pulse
    assert rules_of("h.subscribe('fault', cb)\n") == []   # exact
    assert rules_of("h.subscribe('nothing.', cb)\n") == ["PROTO002"]
    assert rules_of("h.wait_event('live.down')\n") == []
    # f-string tails resolve against known topic tails.
    assert rules_of("b.subscribe(f'{ns}.setroot', cb)\n") == []
    assert rules_of("b.publish(f'{ns}.exploded', {})\n") == ["PROTO002"]


def test_custom_tables_override():
    findings = lint_source(
        "h.rpc('echo.ping', {})\n", CORE,
        registry={"echo": frozenset({"ping"})})
    assert findings == []


# ---------------------------------------------------------------------------
# ERR001 / EXC001 details
# ---------------------------------------------------------------------------

def test_errnum_comparison_sides():
    assert rules_of("ok = exc.errnum == 'ETIMEDOUT'\n") == []
    assert rules_of("ok = 'EBOGUS' == exc.errnum\n") == ["ERR001"]
    assert rules_of("ok = resp.code != 'ENOENT'\n") == []
    # Unrelated attribute comparisons are not errnum checks.
    assert rules_of("ok = obj.status == 'EBOGUS'\n") == []


def test_errnum_keyword_variants():
    assert rules_of("raise_error(errnum='EPROTO')\n") == []
    assert rules_of("raise_error(errnum='E_PROTO')\n") == ["ERR001"]
    # Non-constant code values are skipped (dynamic).
    assert rules_of("m.respond(msg, code=exc.code)\n") == []


# ---------------------------------------------------------------------------
# noqa suppression
# ---------------------------------------------------------------------------

def test_noqa_blanket_and_targeted():
    assert rules_of("x = time.time()  # repro: noqa\n") == []
    assert rules_of(
        "x = time.time()  # repro: noqa[DET001]\n") == []
    assert rules_of(
        "x = time.time()  # repro: noqa[DET001, EXC001]\n") == []
    # A noqa for a different rule does not suppress.
    assert rules_of(
        "x = time.time()  # repro: noqa[EXC001]\n") == ["DET001"]


def test_noqa_only_covers_its_line():
    src = ("x = time.time()  # repro: noqa[DET001]\n"
           "y = time.time()\n")
    findings = lint_source(src, CORE)
    assert [f.rule for f in findings] == ["DET001"]
    assert findings[0].line == 2


# ---------------------------------------------------------------------------
# files, output, CLI
# ---------------------------------------------------------------------------

def test_repo_source_is_lint_clean():
    # The acceptance criterion: the shipped package has zero findings.
    import repro
    import os
    pkg = os.path.dirname(os.path.abspath(repro.__file__))
    assert lint_paths([pkg]) == []


def test_syntax_error_reported_not_raised(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def broken(:\n")
    findings = lint_paths([str(tmp_path)])
    assert [f.rule for f in findings] == ["PARSE"]


def test_iter_python_files_sorted_and_filtered(tmp_path):
    (tmp_path / "b.py").write_text("")
    (tmp_path / "a.py").write_text("")
    (tmp_path / "c.txt").write_text("")
    sub = tmp_path / "__pycache__"
    sub.mkdir()
    (sub / "x.py").write_text("")
    files = list(iter_python_files([str(tmp_path)]))
    assert [f.rsplit("/", 1)[1] for f in files] == ["a.py", "b.py"]


def test_render_text_and_json():
    findings = lint_source(POSITIVE["EXC001"], CORE)
    text = render_text(findings)
    assert "EXC001" in text and CORE in text
    assert "1 finding(s): 1 error(s), 0 warning(s)" in text
    import json
    doc = json.loads(render_json(findings, kind="lint"))
    assert doc["meta"]["kind"] == "lint"
    assert doc["findings"][0]["rule"] == "EXC001"
    assert doc["findings"][0]["line"] == 3


def test_finding_provenance_rendering():
    static = Finding(rule="X", severity="error", message="m",
                     file="f.py", line=3, col=7)
    assert static.where() == "f.py:3:7"
    runtime = Finding(rule="X", severity="error", message="m",
                      t=1.25, rank=4)
    assert runtime.where() == "t=1.25 rank=4"


def test_cli_strict_gate(tmp_path):
    from repro.analysis.__main__ import main
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import time\nt = time.time()\n")
    assert main(["lint", "--strict", str(clean)]) == 0
    assert main(["lint", "--strict", str(dirty)]) == 1
    # Non-strict reports but does not gate.
    assert main(["lint", str(dirty)]) == 0
    assert main(["lint", "--list-rules"]) == 0


def test_cli_module_entrypoint():
    # `python -m repro.analysis lint --strict` on the shipped package
    # must exit 0 (the CI gate invocation, end to end).
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "lint", "--strict",
         "--quiet"],
        capture_output=True, text=True)
    assert proc.returncode == 0, proc.stdout + proc.stderr
