"""Tests for the runtime sanitizers (repro.analysis.sanitizers).

Covers each checker with a violating scenario (flagged) and a clean
scenario (silent), plus the two global guarantees: clean KAP and
chaos runs are sanitizer-silent, and enabling sanitizers leaves a run
event-identical (pure observers).
"""

from repro import make_cluster
from repro.analysis.sanitizers import (EventFingerprint, SanitizerSet,
                                       diff_fingerprints,
                                       replay_fingerprint_hook)
from repro.cmb.message import Message, MessageType
from repro.cmb.session import CommsSession, ModuleSpec
from repro.kap.config import KapConfig
from repro.kap.driver import run_kap
from repro.kvs.api import KvsClient
from repro.kvs.module import KvsModule
from repro.obs import SpanTracer
from repro.sim.kernel import Simulation


def rules_of(findings):
    return [f.rule for f in findings]


# ---------------------------------------------------------------------------
# FIFO link sanitizer (SAN101)
# ---------------------------------------------------------------------------

def test_fifo_violation_flagged():
    san = SanitizerSet()
    a, b, c = ["m1"], ["m2"], ["m3"]      # distinct identities
    san.on_send(1, 2, "p", a)
    san.on_send(1, 2, "p", b)
    san.on_send(1, 2, "p", c)
    san.on_deliver(1, 2, "p", a)
    san.on_deliver(1, 2, "p", c)          # skipping b is legal (drop)
    san.on_deliver(1, 2, "p", b)          # ...but b after c is reordering
    assert rules_of(san.findings) == ["SAN101"]
    assert "1->2" in san.findings[0].message


def test_fifo_duplicates_and_drops_are_legal():
    san = SanitizerSet()
    a, b = ["m1"], ["m2"]
    san.on_send(1, 2, "p", a)
    san.on_send(1, 2, "p", b)
    san.on_deliver(1, 2, "p", a)
    san.on_deliver(1, 2, "p", a)          # chaos duplication
    san.on_drop(1, 2, b)                  # drop: just a gap
    san.on_deliver(1, 2, "p", b)          # late copy still in order
    assert san.findings == []
    assert san.fifo.checked == 3


def test_fifo_links_are_independent():
    san = SanitizerSet()
    a, b = ["m1"], ["m2"]
    san.on_send(1, 2, "p", a)
    san.on_send(1, 3, "p", b)
    san.on_deliver(1, 3, "p", b)          # other link, later seq first
    san.on_deliver(1, 2, "p", a)
    assert san.findings == []


# ---------------------------------------------------------------------------
# KVS consistency sanitizer (SAN102 / SAN103)
# ---------------------------------------------------------------------------

def test_monotonic_read_violation_unit():
    san = SanitizerSet()
    san.kvs_read("kvs", 3, 5)
    san.kvs_read("kvs", 3, 4)
    assert rules_of(san.findings) == ["SAN102"]
    assert san.findings[0].rank == 3


def test_read_your_writes_violation_unit():
    san = SanitizerSet()
    san.kvs_commit_ack("kvs", 2, 7)
    san.kvs_read("kvs", 2, 6)
    assert rules_of(san.findings) == ["SAN103"]


def test_per_rank_and_namespace_isolation():
    san = SanitizerSet()
    san.kvs_read("kvs", 1, 9)
    san.kvs_read("kvs", 2, 3)             # other rank: fine
    san.kvs_read("ns0", 1, 1)             # other namespace: fine
    assert san.findings == []


class RegressingKvs(KvsModule):
    """KvsModule with the monotonic root guard removed — the seeded
    bug the consistency sanitizer exists to catch."""

    def _apply_root(self, version, root_sha):
        self.version = version
        self.root_sha = root_sha
        san = self._san()
        if san is not None:
            san.kvs_root_applied(self.name, self.rank, version)


def test_seeded_root_regression_run_is_flagged():
    """A run whose KVS applies a stale root must produce SAN102/SAN103:
    the stale setroot regresses the slave's version, and the client's
    next kvs_get_version observes it."""
    cluster = make_cluster(4, seed=3)
    session = CommsSession(cluster,
                           modules=[ModuleSpec(RegressingKvs)]).start()
    san = session.enable_sanitizers(span_check=False)
    sim = cluster.sim
    kvs = KvsClient(session.connect(2))

    def scenario():
        yield kvs.put("a", 1)
        yield kvs.commit()                # rank 2 acked at version 1
        yield kvs.put("b", 2)
        yield kvs.commit()                # ...then version 2
        # A stale setroot (replayed event) arrives at rank 2; the
        # buggy module applies it, regressing version 2 -> 1.
        session.brokers[2]._deliver_event(Message(
            topic="kvs.setroot", mtype=MessageType.EVENT,
            payload={"version": 1, "rootref": "stale"}, src_rank=0))
        got = yield kvs.get_version()
        assert got["version"] == 1        # the bug is live

    sim.run_until_complete(sim.spawn(scenario(), name="scenario"))
    session.stop()
    rules = set(rules_of(san.findings))
    assert "SAN102" in rules              # root regression observed
    assert "SAN103" in rules              # read < committed floor
    # Provenance: runtime findings carry sim time + rank, no file.
    for f in san.findings:
        assert f.t is not None and f.rank == 2 and f.file == ""


def test_clean_commit_run_is_silent():
    cluster = make_cluster(4, seed=3)
    session = CommsSession(cluster,
                           modules=[ModuleSpec(KvsModule)]).start()
    san = session.enable_sanitizers(span_check=False)
    sim = cluster.sim
    kvs = KvsClient(session.connect(2))

    def scenario():
        yield kvs.put("a", 1)
        yield kvs.commit()
        v1 = yield kvs.get_version()
        yield kvs.put("b", 2)
        yield kvs.commit()
        v2 = yield kvs.get_version()
        assert v2["version"] > v1["version"]

    sim.run_until_complete(sim.spawn(scenario(), name="scenario"))
    session.stop()
    assert san.findings == []
    assert san.kvs.reads >= 2 and san.kvs.acks >= 2


# ---------------------------------------------------------------------------
# span forest sanitizer (SAN104)
# ---------------------------------------------------------------------------

def test_span_forest_violation_flagged():
    tracer = SpanTracer(lambda: 0.0)
    root = tracer.start_trace("ok", rank=0)
    tracer.finish(root)
    tracer.start_span((root.trace_id, 9999), "orphan", "test", rank=1)
    san = SanitizerSet()
    san.attach_tracer(tracer)
    findings = san.finish()
    assert rules_of(findings) == ["SAN104"]
    assert "orphan" in findings[0].message or "parent" \
        in findings[0].message


def test_span_forest_clean_tracer_silent():
    tracer = SpanTracer(lambda: 0.0)
    root = tracer.start_trace("ok", rank=0)
    child = tracer.start_span((root.trace_id, root.span_id), "hop",
                              "net", rank=1)
    tracer.finish(child)
    tracer.finish(root)
    san = SanitizerSet()
    san.attach_tracer(tracer)
    assert san.finish() == []
    assert san.finish() == []             # idempotent


# ---------------------------------------------------------------------------
# replay-divergence detector (SAN105)
# ---------------------------------------------------------------------------

def drive(seed, jitter=0.0):
    """A small stochastic workload fingerprinted via the kernel hook."""
    sim = Simulation(seed=seed)
    fp = replay_fingerprint_hook(sim)

    def worker(i):
        for _ in range(4):
            yield sim.timeout(sim.rng.random() * 1e-3 + jitter)

    for i in range(3):
        sim.spawn(worker(i), name=f"w{i}")
    sim.run()
    return fp


def test_same_seed_same_fingerprint():
    a, b = drive(11), drive(11)
    assert a.digest() == b.digest()
    assert a.count == b.count > 0
    assert diff_fingerprints(a, b) == []


def test_divergence_detected_with_first_event():
    a, b = drive(11), drive(12)
    findings = diff_fingerprints(a, b, label="seed-swap")
    assert rules_of(findings) == ["SAN105"]
    assert "diverge at event #" in findings[0].message
    assert findings[0].extra["index"] >= 0


def test_digest_only_mode():
    a = EventFingerprint(keep_records=False)
    b = EventFingerprint(keep_records=False)
    a(0.0, 1, type("E", (), {"name": "x"})())
    b(0.0, 1, type("E", (), {"name": "y"})())
    findings = diff_fingerprints(a, b)
    assert rules_of(findings) == ["SAN105"]
    assert "fingerprints differ" in findings[0].message


def test_port_key_counter_normalized_out():
    # Session port keys (cmb<N>) come from a process-global counter;
    # the fingerprint must not see them.
    a, b = EventFingerprint(), EventFingerprint()
    a(0.0, 1, type("E", (), {"name": "get:inbox:3:cmb1"})())
    b(0.0, 1, type("E", (), {"name": "get:inbox:3:cmb7"})())
    assert a.digest() == b.digest()


# ---------------------------------------------------------------------------
# whole-scenario guarantees
# ---------------------------------------------------------------------------

KAP = KapConfig(nnodes=8, procs_per_node=1, nputs=2, sync="fence", seed=5)


def test_clean_kap_run_is_sanitizer_silent():
    result = run_kap(KAP, sanitize=True)
    assert result.sanitizer_findings == []
    assert result.event_fingerprint


def test_sanitizers_are_pure_observers():
    """Event-identical on/off: same event count, same latencies."""
    base = run_kap(KAP)
    checked = run_kap(KAP, sanitize=True)
    assert checked.events == base.events
    assert checked.max_sync_latency == base.max_sync_latency
    assert checked.max_consumer_latency == base.max_consumer_latency
    assert checked.total_time == base.total_time


def test_kap_replay_fingerprints_match():
    a = run_kap(KAP, sanitize=True)
    b = run_kap(KAP, sanitize=True)
    assert a.event_fingerprint == b.event_fingerprint


def test_enable_sanitizers_idempotent_and_wired():
    cluster = make_cluster(2, seed=0)
    session = CommsSession(cluster, modules=[ModuleSpec(KvsModule)])
    san = session.enable_sanitizers()
    assert session.enable_sanitizers() is san
    assert cluster.network.sanitizers is san
    assert session.span_tracer is not None   # span_check pulled tracing in
    stats = san.stats()
    assert set(stats) == {"fifo_checked", "kvs_reads", "kvs_acks",
                          "findings"}


def test_chaos_run_sanitized_and_event_identical():
    import sys
    from pathlib import Path
    sys.path.insert(0, str(Path(__file__).parent))
    from chaos import run_chaos_workload

    kwargs = dict(n_nodes=15, n_clients=8, drop_rate=0.01,
                  dup_rate=0.005, n_iters=1, seed=9, fault_seed=4)
    base = run_chaos_workload(**kwargs)
    checked = run_chaos_workload(**kwargs, sanitize=True)
    assert checked.converged and base.converged
    assert checked.sanitizer_findings == []
    # Pure observation: the chaos run's outcome is unchanged.
    assert checked.reads_verified == base.reads_verified
    assert checked.makespan == base.makespan
    assert checked.client_retries == base.client_retries
    # And a replay reproduces the stream bit for bit.
    again = run_chaos_workload(**kwargs, sanitize=True)
    assert again.event_fingerprint == checked.event_fingerprint
