"""Chaos-grade fault injection tests.

Covers the chaos tentpole end to end: seeded fault plans (drop /
duplicate / delay), broker-level retransmission and idempotent replay,
client retries, prompt EHOSTUNREACH failure of in-flight RPCs,
cascading-failure self-healing, revive/reattach, and convergence of a
KAP-style workload under loss plus an interior broker kill.
"""

import pytest

from repro import make_cluster, standard_session
from repro.cmb.errors import EHOSTUNREACH, EINVAL, ENOENT, ETIMEDOUT, RpcError
from repro.kvs import KvsClient
from repro.sim import FaultPlan

from .chaos import run_chaos_workload


# ----------------------------------------------------------------------
# FaultPlan unit behaviour
# ----------------------------------------------------------------------
def test_fault_plan_seeded_determinism():
    a = FaultPlan(seed=3, drop_rate=0.2, dup_rate=0.1, delay_rate=0.3)
    b = FaultPlan(seed=3, drop_rate=0.2, dup_rate=0.1, delay_rate=0.3)
    seq_a = [a.decide(0, 1) for _ in range(200)]
    seq_b = [b.decide(0, 1) for _ in range(200)]
    assert seq_a == seq_b
    c = FaultPlan(seed=4, drop_rate=0.2, dup_rate=0.1, delay_rate=0.3)
    assert [c.decide(0, 1) for _ in range(200)] != seq_a


def test_fault_plan_link_overrides_and_one_shot():
    plan = FaultPlan(seed=0)
    plan.set_link(1, 2, drop_rate=1.0)
    dropped, _, _ = plan.decide(1, 2)
    assert dropped
    dropped, _, _ = plan.decide(2, 1)   # other direction untouched
    assert not dropped
    plan.drop_next(2, 1, count=2)       # targeted one-shot faults
    assert plan.decide(2, 1)[0]
    assert plan.decide(2, 1)[0]
    assert not plan.decide(2, 1)[0]
    stats = plan.stats()
    assert stats["forced_drops"] == 2
    assert stats["drops"] >= 1


def test_fault_plan_fifo_clamp_preserves_link_order():
    plan = FaultPlan(seed=1, delay_rate=1.0, delay_extra=1e-3)
    t1 = plan.fifo_clamp(0, 1, 1.0)
    t2 = plan.fifo_clamp(0, 1, 0.5)     # would overtake: clamped
    assert t2 >= t1
    t3 = plan.fifo_clamp(1, 0, 0.1)     # independent link
    assert t3 == pytest.approx(0.1)


def test_injected_drops_hit_drop_hook_and_counters():
    cluster = make_cluster(3, seed=2)
    plan = FaultPlan(seed=5, drop_rate=1.0)
    cluster.network.fault_plan = plan
    dropped = []
    cluster.network.drop_hook = lambda src, dst, payload: dropped.append(
        (src, dst))
    session = standard_session(cluster)
    session.start()
    sim = cluster.sim

    def client():
        kvs = KvsClient(session.connect(1, collective=False), timeout=0.1)
        yield kvs.put("x", 1)           # local to rank 1's slave: ok
        try:
            yield kvs.commit()          # must cross the fabric: dropped
        except RpcError as exc:
            return exc.code
        return None

    proc = sim.spawn(client())
    sim.run(until=5.0)
    assert proc.triggered and proc.ok
    assert proc.value == ETIMEDOUT
    assert dropped, "drop_hook never saw the injected drops"
    assert plan.stats()["drops"] > 0
    assert cluster.network.dropped >= plan.stats()["drops"]
    session.stop()


# ----------------------------------------------------------------------
# RpcError.retryable
# ----------------------------------------------------------------------
def test_retryable_error_classification():
    assert RpcError("t", "x", code=ETIMEDOUT).retryable
    assert RpcError("t", "x", code=EHOSTUNREACH).retryable
    assert not RpcError("t", "x", code=EINVAL).retryable
    assert not RpcError("t", "x", code=ENOENT).retryable


def test_definitive_errors_not_retried():
    """ENOENT answers immediately even with retries enabled: the retry
    loop must not re-issue definitive service answers."""
    cluster = make_cluster(3, seed=2)
    session = standard_session(cluster)
    session.start()
    sim = cluster.sim
    handle = session.connect(1, collective=False)

    def client():
        try:
            yield handle.rpc("kvs.get", {"key": "no.such.key"},
                             timeout=1.0, retries=5)
        except RpcError as exc:
            return exc.code
        return None

    proc = sim.spawn(client())
    sim.run()
    assert proc.value == ENOENT
    assert handle.retries == 0
    session.stop()


# ----------------------------------------------------------------------
# Client retry + broker replay
# ----------------------------------------------------------------------
def test_client_retry_survives_interior_kill():
    """A client under a dying interior broker retries through the healed
    route and succeeds; at least one retry is observed."""
    cluster = make_cluster(7, seed=9)
    session = standard_session(cluster, with_heartbeat=True,
                               hb_period=0.05, hb_max_epochs=400)
    session.start()
    sim = cluster.sim
    sim.run(until=0.3)
    session.fail_rank(1)
    handle = session.connect(3, collective=False)   # 3 sits under 1

    def client():
        kvs = KvsClient(handle, timeout=0.05, retries=10)
        yield kvs.put("retry.key", 99)
        yield kvs.commit()
        return (yield kvs.get("retry.key"))

    proc = sim.spawn(client())
    sim.run(until=5.0)
    assert proc.triggered and proc.ok and proc.value == 99
    assert handle.retries >= 1
    session.stop()


def test_duplicate_delivery_is_harmless():
    """Heavy duplication must not double-apply anything: the final root
    version and reference match a fault-free run exactly."""

    def final_root(dup_rate):
        cluster = make_cluster(7, seed=3)
        if dup_rate:
            cluster.network.fault_plan = FaultPlan(seed=13,
                                                   dup_rate=dup_rate)
        session = standard_session(cluster, with_heartbeat=True,
                                   hb_period=0.05, hb_max_epochs=200)
        session.start()
        sim = cluster.sim

        def app(i, rank):
            kvs = KvsClient(session.connect(rank), timeout=2.0, retries=4)
            yield kvs.put(f"dup.k{i}", i)
            yield kvs.fence("dup.f", 8)
            yield kvs.put(f"dup.c{i}", -i)
            yield kvs.commit()

        procs = [sim.spawn(app(i, i % 7)) for i in range(8)]
        while sim.now < 8.0 and not all(p.triggered for p in procs):
            sim.run(until=sim.now + 0.5)
        assert all(p.triggered and p.ok for p in procs)
        kvs0 = session.module_at(0, "kvs")
        out = (kvs0.version, kvs0.root_sha, session.retry_stats())
        session.stop()
        return out

    v_clean, root_clean, _ = final_root(0.0)
    v_dup, root_dup, stats = final_root(0.25)
    assert (v_dup, root_dup) == (v_clean, root_clean)
    absorbed = stats["dups_parked"] + stats["replay_hits"]
    assert absorbed > 0, "no duplicate was ever absorbed"


def test_inflight_rpc_fails_fast_with_ehostunreach():
    """When the next hop is declared down, a pending request that
    cannot follow a healed route fails immediately with EHOSTUNREACH
    carrying the dead rank — not a slow client-side timeout."""
    cluster = make_cluster(7, seed=4)
    session = standard_session(cluster)
    session.start()
    sim = cluster.sim
    broker3 = session.brokers[3]
    got = []
    broker3.rpc_hop_cb(1, "kvs.getroot", {}, got.append)  # pinned hop
    # Declare rank 1 down before the response can come back.
    session.fail_rank(1)
    session.heal_around(1)
    sim.run(until=0.5)
    assert got, "pending RPC was not resolved"
    resp = got[0]
    assert resp.error is not None
    assert resp.errnum == EHOSTUNREACH
    assert resp.err_rank == 1
    session.stop()


# ----------------------------------------------------------------------
# Self-healing: cascades and reattach
# ----------------------------------------------------------------------
def test_cascading_failures_orphans_reach_root():
    """Kill a parent, then its replacement: grand-orphans must end up
    adopted by the root (children lists included, so events still
    reach them), and service from their subtree must work."""
    cluster = make_cluster(15, seed=21)
    session = standard_session(cluster, with_heartbeat=True,
                               hb_period=0.05, hb_max_epochs=100000)
    session.start()
    sim = cluster.sim
    sim.run(until=0.5)
    session.fail_rank(3)            # parent of 7, 8
    sim.run(until=1.2)              # detect + heal: 7, 8 -> rank 1
    assert session.brokers[7].parent == 1
    session.fail_rank(1)            # now kill the replacement
    sim.run(until=2.4)
    live0 = session.module_at(0, "live")
    assert {1, 3} <= live0.announced
    for orphan in (4, 7, 8):
        assert session.brokers[orphan].parent == 0
        assert orphan in session.brokers[0].children

    def client(rank):
        kvs = KvsClient(session.connect(rank))
        yield kvs.put(f"casc.{rank}", rank)
        yield kvs.fence("casc.f", 2)
        return (yield kvs.get(f"casc.{rank}"))

    procs = [sim.spawn(client(r)) for r in (7, 8)]
    sim.run(until=4.0)
    assert all(p.triggered and p.ok and p.value == r
               for p, r in zip(procs, (7, 8)))
    session.stop()


def test_revive_rank_reattaches_and_serves():
    """A revived broker rejoins via live.reattach: the dead-set is
    pruned, original topology edges are restored, adopted orphans are
    handed back, and service through the returnee works."""
    cluster = make_cluster(15, seed=22)
    session = standard_session(cluster, with_heartbeat=True,
                               hb_period=0.05, hb_max_epochs=100000)
    session.start()
    sim = cluster.sim
    sim.run(until=0.5)
    session.fail_rank(1)
    sim.run(until=1.5)
    live0 = session.module_at(0, "live")
    assert 1 in live0.announced
    assert session.brokers[3].parent == 0   # orphans healed to root

    session.revive_rank(1)
    sim.run(until=2.5)
    assert 1 not in live0.announced         # dead-set pruned
    assert session.brokers[1].parent == 0
    assert 1 in session.brokers[0].children
    assert session.brokers[3].parent == 1   # orphan handed back
    assert 3 not in session.brokers[0].children

    def client():
        kvs = KvsClient(session.connect(3, collective=False))
        yield kvs.put("revive.k", 7)
        yield kvs.commit()
        return (yield kvs.get("revive.k"))

    proc = sim.spawn(client())
    sim.run(until=4.0)
    assert proc.triggered and proc.ok and proc.value == 7
    # The returnee must not be re-declared dead afterwards.
    assert 1 not in live0.announced
    session.stop()


# ----------------------------------------------------------------------
# Convergence under chaos (the acceptance workload)
# ----------------------------------------------------------------------
def test_chaos_loss_and_interior_kill_converges():
    """31 nodes, 1% seeded loss, one interior broker killed mid-run:
    every acknowledged write is readable, fences release, and no
    waiter hangs."""
    report = run_chaos_workload(n_nodes=31, n_clients=16, drop_rate=0.01,
                                kill_ranks=(5,), kill_at=0.25,
                                n_iters=2, iter_gap=0.2, run_until=40.0)
    assert report.converged, report.errors
    assert report.hung_waiters == 0
    assert report.reads_failed == 0
    assert report.reads_verified == 16 * 3   # 2 fences + 1 commit each


def test_chaos_dup_and_delay_converges():
    """Duplication and delay injection (no loss, no kill) converge with
    zero verification failures and no retry storms."""
    report = run_chaos_workload(n_nodes=15, n_clients=8, drop_rate=0.0,
                                dup_rate=0.05, delay_rate=0.2,
                                n_iters=2, run_until=20.0)
    assert report.converged, report.errors
    assert report.fault_stats["dups"] > 0
    assert report.fault_stats["delays"] > 0


def test_chaos_kill_root_mid_fence_converges():
    """The multi-master acceptance scenario: rank 0 — the KVS root
    master — is killed mid-``kvs_fence`` under 1% loss with standby
    replicas configured.  The ring election promotes a replica, the
    in-flight fence replays against it, and every acknowledged write
    survives with the runtime sanitizers clean (no acked write lost,
    no stale read served)."""
    report = run_chaos_workload(n_nodes=15, n_clients=8, drop_rate=0.01,
                                seed=5, fault_seed=13,
                                kill_ranks=(0,), kill_at=0.12,
                                hb_period=0.05, n_iters=2, iter_gap=0.1,
                                timeout=0.5, retries=10, run_until=40.0,
                                kvs_replicas=(1, 2), sanitize=True)
    assert report.converged, report.errors
    assert report.reads_failed == 0
    assert report.hung_waiters == 0
    assert report.sanitizer_findings == []
    assert report.reads_verified == 8 * 3   # 2 fences + 1 commit each


def test_chaos_harness_fault_free_baseline():
    """With all rates zero and no kills the harness reports a clean,
    retry-free run (sanity for the amplification metric)."""
    report = run_chaos_workload(n_nodes=15, n_clients=8, drop_rate=0.0,
                                fault_seed=1, n_iters=1, run_until=20.0)
    assert report.converged, report.errors
    assert report.client_retries == 0
    assert report.retry_amplification == 0.0
