"""Integration tests for broker routing, sessions, and client handles."""

import pytest

from repro.cmb.api import RpcError
from repro.cmb.message import Message
from repro.cmb.module import CommsModule
from repro.cmb.session import CommsSession, ModuleSpec
from repro.cmb.topology import TreeTopology, flat_topology
from repro.sim.cluster import make_cluster


class EchoModule(CommsModule):
    """Test module: echoes payloads back, annotated with its rank."""

    name = "echo"

    def req_ping(self, msg: Message) -> None:
        self.respond(msg, {"pong": msg.payload.get("data"),
                           "served_by": self.rank})

    def req_boom(self, msg: Message) -> None:
        self.respond(msg, error="exploded")


class CountingModule(CommsModule):
    """Counts events it observes."""

    name = "counter"

    def __init__(self, broker):
        super().__init__(broker)
        self.seen = []

    def start(self):
        self.broker.subscribe("tick", lambda m: self.seen.append(
            m.payload["n"]))


def make_session(n=8, arity=2, modules=(), node_ids=None):
    cluster = make_cluster(n if node_ids is None else max(node_ids) + 1,
                           seed=1)
    size = n if node_ids is None else len(node_ids)
    session = CommsSession(cluster, node_ids=node_ids,
                           topology=TreeTopology(size, arity=arity),
                           modules=list(modules)).start()
    return cluster, session


def run_client(cluster, session, rank, fn):
    """Run generator fn(handle) as a simulated client process."""
    handle = session.connect(rank, collective=False)
    proc = cluster.sim.spawn(fn(handle))
    return cluster.sim.run_until_complete(proc)


class TestRpcRouting:
    def test_local_module_serves_request(self):
        cluster, session = make_session(modules=[ModuleSpec(EchoModule)])

        def client(h):
            resp = yield h.rpc("echo.ping", {"data": 42})
            return resp

        resp = run_client(cluster, session, 5, client)
        assert resp == {"pong": 42, "served_by": 5}

    def test_request_routes_upstream_to_first_match(self):
        # Module only at the root: leaf requests climb the tree.
        cluster, session = make_session(
            modules=[ModuleSpec(EchoModule, max_depth=0)])

        def client(h):
            resp = yield h.rpc("echo.ping", {"data": "up"})
            return resp

        resp = run_client(cluster, session, 7, client)
        assert resp["served_by"] == 0

    def test_depth_limited_loading(self):
        cluster, session = make_session(
            n=15, modules=[ModuleSpec(EchoModule, max_depth=1)])
        # Rank 7 (depth 3) routes up; ranks 1-2 (depth 1) serve locally.
        assert "echo" not in session.brokers[7].modules
        assert "echo" in session.brokers[1].modules

        def client(h):
            return (yield h.rpc("echo.ping", {}))

        assert run_client(cluster, session, 7, client)["served_by"] == 1

    def test_unknown_module_gets_error_at_root(self):
        cluster, session = make_session(modules=[])

        def client(h):
            try:
                yield h.rpc("nosuch.thing", {})
            except RpcError as exc:
                return str(exc)

        msg = run_client(cluster, session, 3, client)
        assert "no module matches" in msg

    def test_module_error_response_raises_rpcerror(self):
        cluster, session = make_session(modules=[ModuleSpec(EchoModule)])

        def client(h):
            with pytest.raises(RpcError, match="exploded"):
                yield h.rpc("echo.boom", {})
            return "ok"

        assert run_client(cluster, session, 2, client) == "ok"

    def test_missing_handler_is_error(self):
        cluster, session = make_session(modules=[ModuleSpec(EchoModule)])

        def client(h):
            with pytest.raises(RpcError, match="no handler"):
                yield h.rpc("echo.nothing", {})
            return "ok"

        assert run_client(cluster, session, 2, client) == "ok"

    def test_rpc_latency_grows_with_depth(self):
        cluster, session = make_session(
            n=15, modules=[ModuleSpec(EchoModule, max_depth=0)])
        sim = cluster.sim
        times = {}

        def client_at(rank):
            def client(h):
                t0 = sim.now
                yield h.rpc("echo.ping", {})
                times[rank] = sim.now - t0
            return client

        for rank in (1, 7):
            run_client(cluster, session, rank, client_at(rank))
        assert times[7] > times[1]  # depth 3 vs depth 1


class TestEvents:
    def test_event_reaches_all_brokers(self):
        cluster, session = make_session(
            modules=[ModuleSpec(CountingModule)])
        session.brokers[5].publish("tick", {"n": 1})
        cluster.sim.run()
        for rank in range(8):
            mod = session.module_at(rank, "counter")
            assert mod.seen == [1], f"rank {rank} missed the event"

    def test_events_totally_ordered(self):
        cluster, session = make_session(
            modules=[ModuleSpec(CountingModule)])
        # Publish from two different ranks back to back.
        session.brokers[3].publish("tick", {"n": 1})
        session.brokers[6].publish("tick", {"n": 2})
        session.brokers[0].publish("tick", {"n": 3})
        cluster.sim.run()
        orders = {tuple(session.module_at(r, "counter").seen)
                  for r in range(8)}
        assert len(orders) == 1  # same total order everywhere

    def test_client_subscribe_and_wait_event(self):
        cluster, session = make_session()

        def client(h):
            ev = h.wait_event("custom.")
            h.publish("custom.thing", {"v": 9})
            msg = yield ev
            return msg.payload

        assert run_client(cluster, session, 4, client) == {"v": 9}

    def test_unsubscribed_topic_not_delivered(self):
        cluster, session = make_session(
            modules=[ModuleSpec(CountingModule)])
        session.brokers[0].publish("other.topic", {"n": 99})
        cluster.sim.run()
        assert session.module_at(3, "counter").seen == []


class TestRing:
    def test_rank_addressed_rpc(self):
        cluster, session = make_session(modules=[ModuleSpec(EchoModule)])

        def client(h):
            resp = yield h.rpc_rank(6, "echo.ping", {"data": "ring"})
            return resp

        resp = run_client(cluster, session, 2, client)
        assert resp == {"pong": "ring", "served_by": 6}

    def test_ring_to_self(self):
        cluster, session = make_session(modules=[ModuleSpec(EchoModule)])

        def client(h):
            return (yield h.rpc_rank(2, "echo.ping", {}))

        assert run_client(cluster, session, 2, client)["served_by"] == 2

    def test_ring_rpc_always_pays_the_full_loop(self):
        # On a unidirectional ring the request travels d hops and the
        # response size-d hops, so every rank-addressed RPC costs one
        # full loop — the "high latency of a ring" the paper accepts
        # for debugging tools.
        cluster, session = make_session(modules=[ModuleSpec(EchoModule)])
        sim = cluster.sim
        times = {}

        def client_to(dst):
            def client(h):
                t0 = sim.now
                yield h.rpc_rank(dst, "echo.ping", {})
                times[dst] = sim.now - t0
            return client

        run_client(cluster, session, 0, client_to(1))
        run_client(cluster, session, 0, client_to(7))
        assert times[7] == pytest.approx(times[1], rel=0.05)

    def test_ring_slower_than_local_module(self):
        cluster, session = make_session(modules=[ModuleSpec(EchoModule)])
        sim = cluster.sim
        spans = {}

        def client(h):
            t0 = sim.now
            yield h.rpc("echo.ping", {})  # served on the local broker
            spans["local"] = sim.now - t0
            t0 = sim.now
            yield h.rpc_rank(5, "echo.ping", {})
            spans["ring"] = sim.now - t0

        run_client(cluster, session, 2, client)
        assert spans["ring"] > 3 * spans["local"]


class TestSessionShape:
    def test_session_over_node_subset(self):
        # Session ranks map onto arbitrary cluster nodes.
        cluster, session = make_session(
            n=4, node_ids=[2, 5, 7, 9],
            modules=[ModuleSpec(EchoModule, max_depth=0)])
        assert session.node_of_rank(0) == 2
        assert session.node_of_rank(3) == 9

        def client(h):
            return (yield h.rpc("echo.ping", {}))

        assert run_client(cluster, session, 3, client)["served_by"] == 0

    def test_topology_size_mismatch_rejected(self):
        cluster = make_cluster(4)
        with pytest.raises(ValueError):
            CommsSession(cluster, topology=TreeTopology(8))

    def test_flat_topology_session(self):
        cluster, session = make_session(
            n=6, arity=5, modules=[ModuleSpec(EchoModule, max_depth=0)])
        assert session.brokers[0].children == [1, 2, 3, 4, 5]

    def test_duplicate_module_rejected(self):
        cluster, session = make_session(modules=[ModuleSpec(EchoModule)])
        with pytest.raises(ValueError):
            session.load_module(ModuleSpec(EchoModule))

    def test_subtree_procs_tracks_connects(self):
        cluster, session = make_session(n=7)
        session.connect(3)
        session.connect(3)
        session.connect(1)
        assert session.subtree_procs(3) == 2
        assert session.subtree_procs(1) == 3  # 1 + subtree {3, 4}
        assert session.subtree_procs(0) == 3
        assert session.total_procs == 3

    def test_disconnect_updates_counts(self):
        cluster, session = make_session(n=3)
        h = session.connect(2)
        assert session.subtree_procs(0) == 1
        h.close()
        assert session.subtree_procs(0) == 0


class TestSelfHealWiring:
    def test_handle_peer_down_reparents_orphans(self):
        cluster, session = make_session(n=15)
        session.fail_rank(1)
        session.heal_around(1)
        assert session.brokers[3].parent == 0
        assert session.brokers[4].parent == 0
        assert 1 not in session.brokers[0].children
        assert 3 in session.brokers[0].children
        assert 4 in session.brokers[0].children

    def test_rpc_works_after_heal(self):
        cluster, session = make_session(
            n=15, modules=[ModuleSpec(EchoModule, max_depth=0)])
        session.fail_rank(1)
        session.heal_around(1)

        def client(h):
            return (yield h.rpc("echo.ping", {"data": 5}))

        # Rank 7 previously routed through 3 -> 1 -> 0; now 3 -> 0.
        resp = run_client(cluster, session, 7, client)
        assert resp == {"pong": 5, "served_by": 0}

    def test_events_flood_around_dead_node(self):
        cluster, session = make_session(
            n=15, modules=[ModuleSpec(CountingModule)])
        session.fail_rank(1)
        session.heal_around(1)
        session.brokers[0].publish("tick", {"n": 1})
        cluster.sim.run()
        for rank in [0, 2, 3, 4, 7, 8, 9, 10]:
            assert session.module_at(rank, "counter").seen == [1]
