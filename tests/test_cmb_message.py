"""Unit tests for CMB messages and canonical JSON utilities."""

import pytest

from repro.cmb.message import HEADER_BYTES, Message, MessageType, split_topic
from repro.jsonutil import (canonical_dumps, canonical_size, json_loads,
                            sha1_of)


class TestCanonicalJson:
    def test_key_order_is_canonical(self):
        a = canonical_dumps({"b": 1, "a": 2})
        b = canonical_dumps({"a": 2, "b": 1})
        assert a == b == b'{"a":2,"b":1}'

    def test_roundtrip(self):
        obj = {"x": [1, 2, {"y": None}], "s": "héllo"}
        assert json_loads(canonical_dumps(obj)) == obj

    def test_size_matches_dump(self):
        obj = {"k": "v" * 100}
        assert canonical_size(obj) == len(canonical_dumps(obj))

    def test_sha1_stable_across_key_order(self):
        assert sha1_of({"a": 1, "b": 2}) == sha1_of({"b": 2, "a": 1})

    def test_sha1_differs_for_different_values(self):
        assert sha1_of({"a": 1}) != sha1_of({"a": 2})

    def test_sha1_is_40_hex(self):
        digest = sha1_of({"x": 1})
        assert len(digest) == 40
        int(digest, 16)  # parses as hex


class TestSplitTopic:
    def test_module_and_method(self):
        assert split_topic("kvs.put") == ("kvs", "put")

    def test_nested_method_names(self):
        assert split_topic("kvs.watch.cancel") == ("kvs", "watch.cancel")

    def test_bare_module(self):
        assert split_topic("hb") == ("hb", "")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            split_topic("")


class TestMessage:
    def test_unique_msgids(self):
        ids = {Message(topic="a.b").msgid for _ in range(100)}
        assert len(ids) == 100

    def test_size_includes_header_and_payload(self):
        msg = Message(topic="kvs.put", payload={"key": "k", "value": "v"})
        assert msg.size() == HEADER_BYTES + canonical_size(msg.payload)

    def test_empty_payload_costs_header_plus_braces(self):
        msg = Message(topic="x.y")
        assert msg.size() == HEADER_BYTES + 2  # "{}"

    def test_module_and_method_accessors(self):
        msg = Message(topic="barrier.enter")
        assert msg.module_name() == "barrier"
        assert msg.method_name() == "enter"

    def test_response_correlates_by_msgid(self):
        req = Message(topic="kvs.get", payload={"key": "a"}, src_rank=5)
        resp = req.make_response({"value": 1})
        assert resp.msgid == req.msgid
        assert resp.mtype is MessageType.RESPONSE
        assert resp.src_rank == 5
        assert resp.error is None

    def test_error_response(self):
        req = Message(topic="kvs.get")
        resp = req.make_response(error="not found")
        assert resp.error == "not found"
        assert resp.payload == {}

    def test_copy_preserves_msgid(self):
        msg = Message(topic="a.b", payload={"x": 1})
        dup = msg.copy(src_rank=9)
        assert dup.msgid == msg.msgid
        assert dup.src_rank == 9
        assert msg.src_rank == -1

    def test_larger_payload_larger_size(self):
        small = Message(topic="t.m", payload={"v": "x"})
        big = Message(topic="t.m", payload={"v": "x" * 1000})
        assert big.size() - small.size() == 999


class TestSizeCache:
    def test_size_computed_once(self):
        msg = Message(topic="kvs.put", payload={"k": "v" * 50})
        first = msg.size()
        # Mutating the payload after first size() is a protocol
        # violation; the cache intentionally keeps the original size.
        msg.payload["k"] = "x"
        assert msg.size() == first

    def test_copy_with_new_payload_resizes(self):
        msg = Message(topic="t.m", payload={"v": "x"})
        _ = msg.size()
        bigger = msg.copy(payload={"v": "x" * 1000})
        assert bigger.size() == msg.size() + 999

    def test_copy_without_payload_keeps_cache(self):
        msg = Message(topic="t.m", payload={"v": "abc"})
        size = msg.size()
        fwd = msg.copy(src_rank=3)
        assert fwd.size() == size

    def test_response_sized_independently(self):
        req = Message(topic="t.m", payload={"big": "y" * 500})
        _ = req.size()
        resp = req.make_response({"ok": 1})
        assert resp.size() < req.size()
