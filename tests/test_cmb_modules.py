"""Tests for the Table I comms modules (hb, live, log, mon, group,
barrier, wexec, resvc)."""

import pytest

from repro.cmb.api import RpcError
from repro.cmb.modules import (BarrierModule, GroupModule, HeartbeatModule,
                               LiveModule, LogModule, MonModule,
                               ResvcModule, WexecModule)
from repro.cmb.session import CommsSession, ModuleSpec
from repro.cmb.topology import TreeTopology
from repro.kvs import KvsClient, KvsModule
from repro.sim.cluster import make_cluster


def make_session(n=8, modules=(), arity=2):
    cluster = make_cluster(n, seed=3)
    session = CommsSession(cluster, topology=TreeTopology(n, arity=arity),
                           modules=list(modules)).start()
    return cluster, session


def run_proc(cluster, gen):
    proc = cluster.sim.spawn(gen)
    return cluster.sim.run_until_complete(proc)


class TestHeartbeat:
    def test_pulses_reach_every_broker(self):
        cluster, session = make_session(modules=[
            ModuleSpec(HeartbeatModule, period=0.1, max_epochs=5)])
        cluster.sim.run()
        for rank in range(8):
            assert session.module_at(rank, "hb").epoch == 5

    def test_max_epochs_bounds_the_run(self):
        cluster, session = make_session(modules=[
            ModuleSpec(HeartbeatModule, period=0.1, max_epochs=3)])
        cluster.sim.run()
        # Three pulses at 0.1s spacing, plus flood time.
        assert cluster.sim.now == pytest.approx(0.3, abs=0.01)

    def test_hb_get_rpc(self):
        cluster, session = make_session(modules=[
            ModuleSpec(HeartbeatModule, period=0.05, max_epochs=4)])
        cluster.sim.run()

        def client(h):
            return (yield h.rpc("hb.get", {}))

        resp = run_proc(cluster, client(session.connect(6, collective=False)))
        assert resp["epoch"] == 4 and resp["period"] == 0.05


class TestLive:
    def _failing_session(self, n=15):
        return make_session(n=n, modules=[
            ModuleSpec(HeartbeatModule, period=0.1, max_epochs=60),
            ModuleSpec(LiveModule, missed_max=3),
        ])

    def test_no_false_positives_when_healthy(self):
        cluster, session = self._failing_session()
        cluster.sim.run()
        for rank in range(15):
            assert session.module_at(rank, "live").announced == set()

    def test_dead_interior_node_detected_and_healed(self):
        cluster, session = self._failing_session()
        cluster.sim.run(until=0.5)
        session.fail_rank(1)
        cluster.sim.run(until=3.0)
        live0 = session.module_at(0, "live")
        assert live0.announced == {1}
        assert session.brokers[3].parent == 0
        assert session.brokers[4].parent == 0
        assert set(session.brokers[0].children) >= {3, 4}

    def test_dead_leaf_detected(self):
        cluster, session = self._failing_session()
        cluster.sim.run(until=0.5)
        session.fail_rank(14)
        cluster.sim.run(until=3.0)
        assert 14 in session.module_at(0, "live").announced
        assert 14 not in session.brokers[6].children

    def test_status_rpc(self):
        cluster, session = self._failing_session(n=7)
        cluster.sim.run(until=0.5)

        def client(h):
            return (yield h.rpc("live.status", {}))

        st = run_proc(cluster, client(session.connect(1, collective=False)))
        assert st["rank"] == 1 and st["parent"] == 0
        assert st["children"] == [3, 4]


class TestLog:
    def test_local_records_forwarded_to_root_sink(self):
        cluster, session = make_session(modules=[ModuleSpec(LogModule)])
        session.brokers[5].log("err", "something bad")
        session.brokers[3].log("info", "something fine")
        cluster.sim.run()
        sink = session.module_at(0, "log").sink
        texts = [r["text"] for r in sink]
        assert "something bad" in texts and "something fine" in texts
        ranks = {r["rank"] for r in sink}
        assert ranks == {5, 3}

    def test_below_threshold_stays_local(self):
        cluster, session = make_session(modules=[
            ModuleSpec(LogModule, forward_level="err")])
        session.brokers[5].log("info", "chatty")
        cluster.sim.run()
        assert session.module_at(0, "log").sink == []
        # ... but it is in the local circular buffer.
        circ = session.module_at(5, "log").circular
        assert any(r["text"] == "chatty" for r in circ)

    def test_batching_reduces_messages(self):
        cluster, session = make_session(modules=[
            ModuleSpec(LogModule, batch_window=1e-3)])
        before = cluster.network.delivered
        for i in range(50):
            session.brokers[7].log("info", f"msg {i}")
        cluster.sim.run()
        sink = session.module_at(0, "log").sink
        assert len(sink) == 50
        # 50 records from depth 3 without batching would be >= 150
        # messages; batching collapses each hop to a handful.
        assert cluster.network.delivered - before < 20

    def test_circular_buffer_bounded(self):
        cluster, session = make_session(modules=[
            ModuleSpec(LogModule, buffer_size=10, forward_level="crit")])
        for i in range(25):
            session.brokers[2].log("info", f"m{i}")
        cluster.sim.run()
        circ = session.module_at(2, "log").circular
        assert len(circ) == 10
        assert circ[0]["text"] == "m15"

    def test_fault_event_dumps_context(self):
        cluster, session = make_session(modules=[
            ModuleSpec(LogModule, forward_level="err")])
        session.brokers[6].log("debug", "pre-crash context")
        session.brokers[0].publish("fault", {"rank": 6})
        cluster.sim.run()
        sink = session.module_at(0, "log").sink
        assert any(r["text"] == "pre-crash context" and r.get("dumped")
                   for r in sink)


class TestBarrier:
    def test_all_participants_released_together(self):
        cluster, session = make_session(modules=[ModuleSpec(BarrierModule)])
        release_times = []

        def member(i):
            h = session.connect(i % 8)
            yield cluster.sim.timeout(i * 1e-4)  # staggered arrival
            yield h.barrier("b1", 16)
            release_times.append(cluster.sim.now)

        procs = [cluster.sim.spawn(member(i)) for i in range(16)]
        cluster.sim.run()
        assert all(p.ok for p in procs)
        assert len(release_times) == 16
        # Nobody releases before the last arrival (15 * 1e-4).
        assert min(release_times) >= 15 * 1e-4

    def test_sequential_barriers_with_same_name(self):
        cluster, session = make_session(n=4,
                                        modules=[ModuleSpec(BarrierModule)])

        def member(i):
            h = session.connect(i % 4)
            yield h.barrier("again", 4)
            yield h.barrier("again2", 4)
            return "done"

        procs = [cluster.sim.spawn(member(i)) for i in range(4)]
        cluster.sim.run()
        assert all(p.ok and p.value == "done" for p in procs)

    def test_barrier_of_one(self):
        cluster, session = make_session(n=2,
                                        modules=[ModuleSpec(BarrierModule)])

        def solo():
            h = session.connect(1)
            yield h.barrier("solo", 1)
            return "released"

        assert run_proc(cluster, solo()) == "released"

    def test_nprocs_mismatch_raises(self):
        cluster, session = make_session(n=2,
                                        modules=[ModuleSpec(BarrierModule)])
        module = session.module_at(1, "barrier")
        state = module._state_for("x", 4)
        with pytest.raises(ValueError):
            module._state_for("x", 5)


class TestGroup:
    def test_join_list_leave(self):
        cluster, session = make_session(modules=[
            ModuleSpec(GroupModule, max_depth=0)])

        def client(h):
            r1 = yield h.rpc("group.join",
                             {"name": "g", "rank": h.rank, "client": 1})
            r2 = yield h.rpc("group.join",
                             {"name": "g", "rank": h.rank, "client": 2})
            listing = yield h.rpc("group.list", {"name": "g"})
            yield h.rpc("group.leave",
                        {"name": "g", "rank": h.rank, "client": 1})
            size = yield h.rpc("group.size", {"name": "g"})
            return r1, r2, listing, size

        h = session.connect(5, collective=False)
        r1, r2, listing, size = run_proc(cluster, client(h))
        assert r1["size"] == 1 and r2["size"] == 2
        assert listing["members"] == [[5, 1], [5, 2]]
        assert size["size"] == 1

    def test_duplicate_join_is_idempotent(self):
        cluster, session = make_session(modules=[
            ModuleSpec(GroupModule, max_depth=0)])

        def client(h):
            yield h.rpc("group.join", {"name": "g", "rank": 1, "client": 9})
            r = yield h.rpc("group.join", {"name": "g", "rank": 1, "client": 9})
            return r

        assert run_proc(cluster, client(
            session.connect(1, collective=False)))["size"] == 1

    def test_group_update_events_published(self):
        cluster, session = make_session(modules=[
            ModuleSpec(GroupModule, max_depth=0)])

        def client(h):
            ev = h.wait_event("group.update")
            yield h.rpc("group.join", {"name": "g", "rank": 0, "client": 1})
            msg = yield ev
            return msg.payload

        payload = run_proc(cluster, client(
            session.connect(3, collective=False)))
        assert payload == {"name": "g", "size": 1}


class TestMon:
    def _mon_session(self, sampler=None):
        samplers = {"metric": sampler or (lambda broker: 2.0)}
        return make_session(modules=[
            ModuleSpec(MonModule, samplers=samplers),
            ModuleSpec(HeartbeatModule, period=0.1, max_epochs=10)])

    def test_sum_reduction_counts_all_brokers(self):
        cluster, session = self._mon_session()

        def client(h):
            yield h.rpc("mon.activate", {"name": "metric", "op": "sum"})
            yield cluster.sim.timeout(0.9)
            return (yield h.rpc("mon.results", {"name": "metric"}))

        res = run_proc(cluster, client(session.connect(0, collective=False)))
        assert set(res["results"].values()) == {16.0}  # 8 brokers x 2.0

    def test_max_reduction(self):
        cluster, session = self._mon_session(
            sampler=lambda broker: float(broker.rank))

        def client(h):
            yield h.rpc("mon.activate", {"name": "metric", "op": "max"})
            yield cluster.sim.timeout(0.9)
            return (yield h.rpc("mon.results", {"name": "metric"}))

        res = run_proc(cluster, client(session.connect(0, collective=False)))
        assert set(res["results"].values()) == {7.0}

    def test_avg_reduction(self):
        cluster, session = self._mon_session(
            sampler=lambda broker: float(broker.rank))

        def client(h):
            yield h.rpc("mon.activate", {"name": "metric", "op": "avg"})
            yield cluster.sim.timeout(0.9)
            return (yield h.rpc("mon.results", {"name": "metric"}))

        res = run_proc(cluster, client(session.connect(0, collective=False)))
        assert set(res["results"].values()) == {3.5}  # mean of 0..7

    def test_unknown_sampler_rejected(self):
        cluster, session = self._mon_session()

        def client(h):
            with pytest.raises(RpcError, match="unknown sampler"):
                yield h.rpc("mon.activate", {"name": "nope"})
            return "ok"

        assert run_proc(cluster, client(
            session.connect(0, collective=False))) == "ok"

    def test_deactivate_stops_sampling(self):
        cluster, session = self._mon_session()

        def client(h):
            yield h.rpc("mon.activate", {"name": "metric", "op": "sum"})
            yield cluster.sim.timeout(0.35)
            yield h.rpc("mon.deactivate", {"name": "metric"})
            res1 = yield h.rpc("mon.results", {"name": "metric"})
            yield cluster.sim.timeout(0.5)
            res2 = yield h.rpc("mon.results", {"name": "metric"})
            return len(res1["results"]), len(res2["results"])

        n1, n2 = run_proc(cluster, client(
            session.connect(0, collective=False)))
        assert n1 >= 1
        assert n2 <= n1 + 1  # at most one straggler epoch completes

    def test_results_stored_in_kvs_when_loaded(self):
        samplers = {"watts": lambda broker: 10.0}
        cluster, session = make_session(modules=[
            ModuleSpec(KvsModule),
            ModuleSpec(MonModule, samplers=samplers),
            ModuleSpec(HeartbeatModule, period=0.1, max_epochs=5)])

        def client(h):
            yield h.rpc("mon.activate", {"name": "watts", "op": "sum"})
            yield cluster.sim.timeout(0.45)
            kvs = KvsClient(h)
            return (yield kvs.get("mon.watts.3"))

        value = run_proc(cluster, client(
            session.connect(2, collective=False)))
        assert value == 80.0


def _task_registry():
    def hello(ctx):
        ctx.print(f"hello from {ctx.taskrank}/{ctx.nprocs}")
        yield ctx.sim.timeout(0.001)

    def crasher(ctx):
        yield ctx.sim.timeout(0.001)
        raise RuntimeError("task blew up")

    def sleeper(ctx):
        yield ctx.sim.timeout(100.0)

    return {"hello": hello, "crasher": crasher, "sleeper": sleeper}


class TestWexec:
    def _session(self):
        return make_session(modules=[
            ModuleSpec(KvsModule),
            ModuleSpec(WexecModule, registry=_task_registry())])

    def test_bulk_launch_and_done_event(self):
        cluster, session = self._session()

        def client(h):
            done = h.wait_event("wexec.done")
            yield h.rpc("wexec.run",
                        {"jobid": "j1", "task": "hello", "nprocs": 16})
            msg = yield done
            return msg.payload

        payload = run_proc(cluster, client(
            session.connect(3, collective=False)))
        assert payload["jobid"] == "j1" and payload["status"] == 0
        assert len(payload["rcs"]) == 16

    def test_cyclic_distribution(self):
        cluster, session = self._session()

        def client(h):
            done = h.wait_event("wexec.done")
            yield h.rpc("wexec.run",
                        {"jobid": "j2", "task": "hello", "nprocs": 16})
            yield done

        run_proc(cluster, client(session.connect(0, collective=False)))
        # Task rank r runs on session rank r % 8.
        for rank in range(8):
            wexec = session.module_at(rank, "wexec")
            mine = [tr for (jid, tr) in wexec.output if jid == "j2"]
            assert sorted(mine) == [rank, rank + 8]

    def test_stdout_captured_in_kvs(self):
        cluster, session = self._session()

        def client(h):
            done = h.wait_event("wexec.done")
            yield h.rpc("wexec.run",
                        {"jobid": "j3", "task": "hello", "nprocs": 4})
            yield done
            kvs = KvsClient(h)
            return (yield kvs.get("lwj.j3.2.stdout"))

        out = run_proc(cluster, client(session.connect(1, collective=False)))
        assert out == ["hello from 2/4"]

    def test_failed_task_reports_nonzero_status(self):
        cluster, session = self._session()

        def client(h):
            done = h.wait_event("wexec.done")
            yield h.rpc("wexec.run",
                        {"jobid": "j4", "task": "crasher", "nprocs": 3})
            msg = yield done
            return msg.payload

        payload = run_proc(cluster, client(
            session.connect(0, collective=False)))
        assert payload["status"] == 1

    def test_unknown_task_rejected(self):
        cluster, session = self._session()

        def client(h):
            with pytest.raises(RpcError, match="unknown task"):
                yield h.rpc("wexec.run",
                            {"jobid": "x", "task": "nope", "nprocs": 1})
            return "ok"

        assert run_proc(cluster, client(
            session.connect(5, collective=False))) == "ok"

    def test_signal_kills_tasks(self):
        cluster, session = self._session()

        def client(h):
            done = h.wait_event("wexec.done")
            yield h.rpc("wexec.run",
                        {"jobid": "j5", "task": "sleeper", "nprocs": 4})
            yield cluster.sim.timeout(0.01)
            yield h.rpc("wexec.signal", {"jobid": "j5", "signum": 9})
            msg = yield done
            return msg.payload

        payload = run_proc(cluster, client(
            session.connect(2, collective=False)))
        assert payload["status"] == 128 + 9
        assert cluster.sim.now < 1.0  # killed, not slept out

    def test_restricted_rank_set(self):
        cluster, session = self._session()

        def client(h):
            done = h.wait_event("wexec.done")
            yield h.rpc("wexec.run", {"jobid": "j6", "task": "hello",
                                      "nprocs": 4, "ranks": [2, 3]})
            yield done

        run_proc(cluster, client(session.connect(0, collective=False)))
        for rank in (0, 1, 4):
            wexec = session.module_at(rank, "wexec")
            assert not [1 for (jid, _) in wexec.output if jid == "j6"]
        assert len([1 for (jid, _) in
                    session.module_at(2, "wexec").output if jid == "j6"]) == 2


class TestResvc:
    def _session(self):
        return make_session(modules=[
            ModuleSpec(KvsModule), ModuleSpec(ResvcModule)])

    def test_resources_enumerated_in_kvs(self):
        cluster, session = self._session()

        def client(h):
            kvs = KvsClient(h)
            # Causal consistency: wait for the enumeration commit's root
            # version before reading from this node's slave.
            yield kvs.wait_version(1)
            rec = yield kvs.get("resource.rank.5")
            return rec

        rec = run_proc(cluster, client(session.connect(4, collective=False)))
        assert rec["cores"] == 16 and rec["hostname"] == "node0005"

    def test_alloc_and_free(self):
        cluster, session = self._session()

        def client(h):
            a = yield h.rpc("resvc.alloc", {"jobid": "a", "cores": 24})
            st = yield h.rpc("resvc.status", {})
            yield h.rpc("resvc.free", {"jobid": "a"})
            st2 = yield h.rpc("resvc.status", {})
            return a, st, st2

        a, st, st2 = run_proc(cluster, client(
            session.connect(6, collective=False)))
        assert sum(a["alloc"].values()) == 24
        assert sum(st["free"].values()) == 8 * 16 - 24
        assert sum(st2["free"].values()) == 8 * 16

    def test_exhaustion_rejected(self):
        cluster, session = self._session()

        def client(h):
            yield h.rpc("resvc.alloc", {"jobid": "big", "cores": 128})
            with pytest.raises(RpcError, match="insufficient"):
                yield h.rpc("resvc.alloc", {"jobid": "more", "cores": 1})
            return "ok"

        assert run_proc(cluster, client(
            session.connect(0, collective=False))) == "ok"

    def test_double_alloc_rejected(self):
        cluster, session = self._session()

        def client(h):
            yield h.rpc("resvc.alloc", {"jobid": "j", "cores": 4})
            with pytest.raises(RpcError, match="already allocated"):
                yield h.rpc("resvc.alloc", {"jobid": "j", "cores": 4})
            return "ok"

        assert run_proc(cluster, client(
            session.connect(0, collective=False))) == "ok"

    def test_free_unknown_job_rejected(self):
        cluster, session = self._session()

        def client(h):
            with pytest.raises(RpcError, match="no allocation"):
                yield h.rpc("resvc.free", {"jobid": "ghost"})
            return "ok"

        assert run_proc(cluster, client(
            session.connect(0, collective=False))) == "ok"

    def test_candidate_rank_restriction(self):
        cluster, session = self._session()

        def client(h):
            a = yield h.rpc("resvc.alloc",
                            {"jobid": "r", "cores": 20, "ranks": [3, 4]})
            return a

        a = run_proc(cluster, client(session.connect(0, collective=False)))
        assert set(a["alloc"]) == {"3", "4"}


class TestWexecToolAccess:
    """The wexec.query tool-attachment RPC (Challenge 4)."""

    def _running_job(self):
        def sleeper(ctx):
            ctx.status = f"phase-{ctx.taskrank % 2}"
            yield ctx.sim.timeout(10.0)

        cluster, session = make_session(modules=[
            ModuleSpec(WexecModule, registry={"sleeper": sleeper})])

        def launcher(h):
            yield h.rpc("wexec.run", {"jobid": "q", "task": "sleeper",
                                      "nprocs": 8})

        run_proc(cluster, launcher(session.connect(0, collective=False)))
        return cluster, session

    def test_query_reports_live_tasks(self):
        cluster, session = self._running_job()

        def tool(h):
            out = []
            for rank in range(8):
                resp = yield h.rpc_rank(rank, "wexec.query",
                                        {"jobid": "q"})
                out.extend(resp["tasks"])
            return out

        tasks = run_proc(cluster, tool(session.connect(2,
                                                       collective=False)))
        assert len(tasks) == 8
        assert all(t["alive"] for t in tasks)
        assert {t["status"] for t in tasks} == {"phase-0", "phase-1"}

    def test_query_unknown_job_is_empty(self):
        cluster, session = self._running_job()

        def tool(h):
            return (yield h.rpc("wexec.query", {"jobid": "ghost"}))

        resp = run_proc(cluster, tool(session.connect(1,
                                                      collective=False)))
        assert resp["tasks"] == []

    def test_query_after_completion_shows_nothing_alive(self):
        def quick(ctx):
            yield ctx.sim.timeout(1e-4)

        cluster, session = make_session(modules=[
            ModuleSpec(WexecModule, registry={"quick": quick})])

        def flow(h):
            done = h.wait_event("wexec.done")
            yield h.rpc("wexec.run", {"jobid": "f", "task": "quick",
                                      "nprocs": 4})
            yield done
            return (yield h.rpc("wexec.query", {"jobid": "f"}))

        resp = run_proc(cluster, flow(session.connect(0,
                                                      collective=False)))
        # Job state is dropped on completion: nothing left to report.
        assert resp["tasks"] == []
