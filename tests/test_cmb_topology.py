"""Unit and property-based tests for overlay topologies."""

import pytest
from hypothesis import given, strategies as st

from repro.cmb.topology import RingTopology, TreeTopology, flat_topology


class TestTreeTopology:
    def test_binary_tree_parents(self):
        t = TreeTopology(7, arity=2)
        assert t.parent(0) is None
        assert t.parent(1) == 0 and t.parent(2) == 0
        assert t.parent(3) == 1 and t.parent(4) == 1
        assert t.parent(5) == 2 and t.parent(6) == 2

    def test_binary_tree_children(self):
        t = TreeTopology(7, arity=2)
        assert t.children(0) == [1, 2]
        assert t.children(1) == [3, 4]
        assert t.children(3) == []

    def test_children_clipped_at_size(self):
        t = TreeTopology(4, arity=2)
        assert t.children(1) == [3]

    def test_depths(self):
        t = TreeTopology(15, arity=2)
        assert t.depth(0) == 0
        assert t.depth(1) == 1
        assert t.depth(7) == 3
        assert t.max_depth() == 3

    def test_subtree_covers_descendants(self):
        t = TreeTopology(7, arity=2)
        assert sorted(t.subtree(1)) == [1, 3, 4]
        assert t.subtree_size(0) == 7

    def test_quad_tree(self):
        t = TreeTopology(21, arity=4)
        assert t.children(0) == [1, 2, 3, 4]
        assert t.parent(5) == 1
        assert t.max_depth() == 2

    def test_flat_topology_is_star(self):
        t = flat_topology(10)
        assert t.children(0) == list(range(1, 10))
        assert all(t.parent(r) == 0 for r in range(1, 10))
        assert t.max_depth() == 1

    def test_single_node(self):
        t = TreeTopology(1)
        assert t.parent(0) is None
        assert t.children(0) == []
        assert t.max_depth() == 0

    def test_bad_sizes_rejected(self):
        with pytest.raises(ValueError):
            TreeTopology(0)
        with pytest.raises(ValueError):
            TreeTopology(4, arity=0)

    def test_out_of_range_rank_rejected(self):
        t = TreeTopology(4)
        with pytest.raises(ValueError):
            t.parent(4)
        with pytest.raises(ValueError):
            t.children(-1)

    def test_parent_map_matches_methods(self):
        t = TreeTopology(9, arity=3)
        pm = t.parent_map()
        assert pm == {r: t.parent(r) for r in range(9)}

    @given(size=st.integers(1, 300), arity=st.integers(1, 8))
    def test_parent_child_consistency(self, size, arity):
        """r is a child of parent(r), for every non-root rank."""
        t = TreeTopology(size, arity)
        for r in range(1, size):
            assert r in t.children(t.parent(r))

    @given(size=st.integers(1, 300), arity=st.integers(1, 8))
    def test_subtree_of_root_is_everything(self, size, arity):
        t = TreeTopology(size, arity)
        assert sorted(t.subtree(0)) == list(range(size))

    @given(size=st.integers(2, 300), arity=st.integers(2, 8))
    def test_depth_is_logarithmic(self, size, arity):
        import math
        t = TreeTopology(size, arity)
        bound = math.ceil(math.log(size, arity)) + 1
        assert t.max_depth() <= bound


class TestRingTopology:
    def test_next_wraps(self):
        r = RingTopology(4)
        assert r.next_rank(0) == 1
        assert r.next_rank(3) == 0

    def test_distance(self):
        r = RingTopology(5)
        assert r.distance(0, 3) == 3
        assert r.distance(3, 0) == 2
        assert r.distance(2, 2) == 0

    def test_out_of_range_rejected(self):
        r = RingTopology(3)
        with pytest.raises(ValueError):
            r.next_rank(3)

    @given(size=st.integers(1, 100), rank=st.integers(0, 99))
    def test_walking_the_ring_visits_everyone(self, size, rank):
        if rank >= size:
            rank %= size
        r = RingTopology(size)
        seen, cur = set(), rank
        for _ in range(size):
            seen.add(cur)
            cur = r.next_rank(cur)
        assert seen == set(range(size))
        assert cur == rank
