"""Tests for per-job comms sessions (Section III's communication model
wired into the instance hierarchy)."""

import pytest

from repro.core import FluxInstance, JobSpec, JobKind, make_ensemble_spec
from repro.core.comms import CommsConfig
from repro.kvs import KvsClient
from repro.resource import ResourcePool, build_cluster_graph
from repro.sim.cluster import make_cluster


def hello_task(ctx):
    ctx.print(f"task {ctx.taskrank} of {ctx.nprocs}")
    yield ctx.sim.timeout(1e-3)


def mpi_task(ctx):
    handle = ctx.connect()
    kvs = KvsClient(handle)
    yield kvs.put(f"app.{ctx.jobid}.{ctx.taskrank}", ctx.taskrank)
    yield kvs.fence(f"app.{ctx.jobid}", ctx.nprocs)
    peer = (ctx.taskrank + 1) % ctx.nprocs
    value = yield kvs.get(f"app.{ctx.jobid}.{peer}")
    ctx.print(f"peer={value}")


def failing_task(ctx):
    yield ctx.sim.timeout(1e-4)
    raise RuntimeError("boom")


def make_instance(n_nodes=8, registry=None):
    cluster = make_cluster(n_nodes, seed=61)
    graph = build_cluster_graph("c", n_racks=1, nodes_per_rack=n_nodes,
                                sockets=2, cores_per_socket=8)
    comms = CommsConfig(cluster, task_registry=registry or {
        "hello": hello_task, "mpi": mpi_task, "fail": failing_task})
    inst = FluxInstance(cluster.sim, ResourcePool(graph), comms=comms,
                        name="root")
    return cluster, inst


class TestRootSession:
    def test_root_instance_owns_a_session(self):
        cluster, inst = make_instance()
        assert inst.session is not None
        assert inst.session.size == 8
        assert "kvs" in inst.session.brokers[0].modules
        assert "wexec" in inst.session.brokers[3].modules

    def test_shutdown_stops_session(self):
        cluster, inst = make_instance()
        inst.shutdown()
        assert not inst.session.brokers[0].alive


class TestTaskJobs:
    def test_task_job_runs_via_wexec(self):
        cluster, inst = make_instance()
        job = inst.submit(JobSpec(ncores=16, task="hello", ntasks=4,
                                  name="hi"))
        cluster.sim.run()
        assert job.state.value == "complete"
        # Output captured on the brokers of the allocated nodes.
        outputs = []
        for broker in inst.session.brokers:
            wexec = broker.modules["wexec"]
            outputs.extend(v for (jid, _), v in wexec.output.items()
                           if jid == f"lwj{job.jobid}")
        assert sorted(sum(outputs, [])) == [
            f"task {i} of 4" for i in range(4)]

    def test_task_defaults_to_one_proc_per_core(self):
        cluster, inst = make_instance()
        job = inst.submit(JobSpec(ncores=4, task="hello"))
        cluster.sim.run()
        assert job.state.value == "complete"
        n_out = sum(1 for broker in inst.session.brokers
                    for (jid, _tr) in broker.modules["wexec"].output
                    if jid == f"lwj{job.jobid}")
        assert n_out == 4

    def test_mpi_style_task_bootstraps_through_kvs(self):
        cluster, inst = make_instance()
        job = inst.submit(JobSpec(ncores=32, task="mpi", ntasks=8))
        cluster.sim.run()
        assert job.state.value == "complete", job.error
        peers = []
        for broker in inst.session.brokers:
            for (jid, tr), out in broker.modules["wexec"].output.items():
                if jid == f"lwj{job.jobid}":
                    peers.append((tr, out[0]))
        assert sorted(peers) == [
            (i, f"peer={(i + 1) % 8}") for i in range(8)]

    def test_failing_task_fails_the_job(self):
        cluster, inst = make_instance()
        job = inst.submit(JobSpec(ncores=4, task="fail", ntasks=2))
        cluster.sim.run()
        assert job.state.value == "failed"
        assert "status 1" in job.error

    def test_task_without_session_fails_job(self):
        cluster = make_cluster(2, seed=1)
        graph = build_cluster_graph("c", 1, 2)
        inst = FluxInstance(cluster.sim, ResourcePool(graph))
        job = inst.submit(JobSpec(ncores=1, task="hello"))
        cluster.sim.run()
        assert job.state.value == "failed"
        assert "comms session" in job.error

    def test_task_and_body_conflict_rejected(self):
        with pytest.raises(ValueError):
            JobSpec(ncores=1, task="t", body=lambda j, i: iter(()))


class TestJobRecords:
    def test_job_states_recorded_in_kvs(self):
        cluster, inst = make_instance()
        job = inst.submit(JobSpec(ncores=8, duration=0.01, name="rec"))
        cluster.sim.run()

        def reader():
            kvs = KvsClient(inst.session.connect(5, collective=False))
            return (yield kvs.get(f"lwj.{job.jobid}.state"))

        proc = cluster.sim.spawn(reader())
        record = cluster.sim.run_until_complete(proc)
        assert record["state"] == "complete"
        assert record["ncores"] == 8 and record["name"] == "rec"

    def test_failed_job_recorded(self):
        cluster, inst = make_instance()
        job = inst.submit(JobSpec(ncores=4, task="fail", ntasks=1))
        cluster.sim.run()

        def reader():
            kvs = KvsClient(inst.session.connect(0, collective=False))
            return (yield kvs.get(f"lwj.{job.jobid}.state"))

        proc = cluster.sim.spawn(reader())
        assert cluster.sim.run_until_complete(proc)["state"] == "failed"


class TestChildSessions:
    def test_child_instance_gets_own_session(self):
        cluster, inst = make_instance()
        ens = inst.submit(make_ensemble_spec(
            "ens", 32, [JobSpec(ncores=8, duration=0.01)]))
        cluster.sim.run(until=0.05)
        assert ens.child is not None
        assert ens.child.session is not None
        assert ens.child.session is not inst.session
        # The child session spans exactly the granted nodes.
        assert ens.child.session.size == ens.allocation.nnodes \
            if ens.allocation else True
        cluster.sim.run()
        assert ens.state.value == "complete"

    def test_child_session_torn_down_at_completion(self):
        cluster, inst = make_instance()
        ens = inst.submit(make_ensemble_spec(
            "ens", 16, [JobSpec(ncores=4, duration=0.01)]))
        cluster.sim.run()
        assert ens.state.value == "complete"
        assert not ens.child.session.brokers[0].alive

    def test_assisted_bootstrap_charged(self):
        cluster, inst = make_instance()
        ens = inst.submit(make_ensemble_spec(
            "ens", 16, [JobSpec(ncores=4, duration=0.0)]))
        cluster.sim.run()
        boot = inst.comms.bootstrap_delay(2, assisted=True)
        assert ens.run_time >= boot

    def test_assisted_cheaper_than_cold(self):
        cfg = CommsConfig(make_cluster(4, seed=1))
        assert (cfg.bootstrap_delay(64, assisted=True)
                < cfg.bootstrap_delay(64, assisted=False))

    def test_tasks_run_inside_child_instance(self):
        cluster, inst = make_instance()
        ens = inst.submit(make_ensemble_spec(
            "nested", 32,
            [JobSpec(ncores=8, task="hello", ntasks=2, name=f"m{i}")
             for i in range(3)]))
        cluster.sim.run()
        assert ens.state.value == "complete"
        member_states = [j.state.value for j in ens.child.jobs.values()]
        assert member_states == ["complete"] * 3
