"""Tests for CommsConfig (per-job session construction and the
bootstrap cost model)."""

import pytest

from repro.cmb.session import ModuleSpec
from repro.core.comms import CommsConfig
from repro.sim.cluster import make_cluster


class TestBootstrapModel:
    def test_cold_boot_scales_with_nodes(self):
        cfg = CommsConfig(make_cluster(4, seed=1))
        assert (cfg.bootstrap_delay(512, assisted=False)
                > cfg.bootstrap_delay(64, assisted=False) * 2)

    def test_assisted_boot_scales_with_depth(self):
        cfg = CommsConfig(make_cluster(4, seed=1))
        d64 = cfg.bootstrap_delay(64, assisted=True)
        d512 = cfg.bootstrap_delay(512, assisted=True)
        # log2(512)/log2(64) = 1.5: depth scaling, not node scaling.
        assert d512 < d64 * 2

    def test_assisted_always_cheaper_at_scale(self):
        cfg = CommsConfig(make_cluster(4, seed=1))
        for n in (2, 16, 128, 1024):
            assert (cfg.bootstrap_delay(n, assisted=True)
                    < cfg.bootstrap_delay(n, assisted=False))

    def test_single_node_session_boot(self):
        cfg = CommsConfig(make_cluster(2, seed=1))
        assert cfg.bootstrap_delay(1, assisted=True) > 0


class TestBuildSession:
    def test_standard_module_set(self):
        cluster = make_cluster(8, seed=2)
        cfg = CommsConfig(cluster)
        session = cfg.build_session(list(range(8))).start()
        root_mods = set(session.brokers[0].modules)
        assert {"kvs", "barrier", "log", "group", "resvc", "wexec",
                "job"} <= root_mods
        # Depth-limited modules absent at the leaves.
        leaf_mods = set(session.brokers[7].modules)
        assert "group" not in leaf_mods and "resvc" not in leaf_mods
        assert "kvs" in leaf_mods

    def test_session_over_subset(self):
        cluster = make_cluster(8, seed=2)
        cfg = CommsConfig(cluster)
        session = cfg.build_session([2, 5, 6])
        assert session.size == 3
        assert session.node_of_rank(1) == 5

    def test_arity_clamped_for_tiny_sessions(self):
        cluster = make_cluster(4, seed=2)
        cfg = CommsConfig(cluster, tree_arity=8)
        session = cfg.build_session([0, 1])
        assert session.topology.arity == 1

    def test_extra_modules_hook(self):
        from repro.cmb.modules import HeartbeatModule
        cluster = make_cluster(4, seed=2)
        cfg = CommsConfig(
            cluster,
            extra_modules=lambda size: [
                ModuleSpec(HeartbeatModule, period=0.1, max_epochs=2)])
        session = cfg.build_session([0, 1, 2]).start()
        assert "hb" in session.brokers[0].modules

    def test_task_registry_reaches_wexec(self):
        def t(ctx):
            yield ctx.sim.timeout(1e-4)

        cluster = make_cluster(4, seed=2)
        cfg = CommsConfig(cluster, task_registry={"t": t})
        session = cfg.build_session([0, 1]).start()
        assert "t" in session.brokers[1].modules["wexec"].registry

    def test_two_sessions_coexist_on_same_nodes(self):
        """Per-job overlays: two sessions share nodes but have distinct
        ports and module instances."""
        cluster = make_cluster(4, seed=2)
        cfg = CommsConfig(cluster)
        s1 = cfg.build_session([0, 1, 2, 3]).start()
        s2 = cfg.build_session([0, 1]).start()
        assert s1.port_key != s2.port_key
        assert (s1.brokers[0].modules["kvs"]
                is not s2.brokers[0].modules["kvs"])

        # Both sessions' KVS work independently.
        from repro.kvs import KvsClient
        sim = cluster.sim

        def writer(session, value):
            kvs = KvsClient(session.connect(1))
            yield kvs.put("shared.key", value)
            yield kvs.commit()
            return (yield kvs.get("shared.key"))

        p1 = sim.spawn(writer(s1, "one"))
        p2 = sim.spawn(writer(s2, "two"))
        sim.run()
        assert p1.value == "one" and p2.value == "two"
