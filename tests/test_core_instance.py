"""Tests for the Flux instance: unified job model, hierarchy rules,
and the grow/shrink elasticity protocol."""

import pytest

from repro.core import (FluxInstance, Job, JobKind, JobSpec, JobState,
                        check_parent_bounding, instance_tree_depth,
                        make_ensemble_spec, partitioned_specs,
                        walk_instances)
from repro.resource import (AllocationError, ResourcePool,
                            build_cluster_graph)
from repro.sched import AffineCostModel, FcfsPolicy, SjfPolicy
from repro.sim import Simulation


def make_instance(ncores=64, **kwargs):
    sim = Simulation(seed=0)
    graph = build_cluster_graph("t", n_racks=1, nodes_per_rack=ncores // 16,
                                sockets=2, cores_per_socket=8)
    inst = FluxInstance(sim, ResourcePool(graph), **kwargs)
    return sim, inst


class TestJobSpec:
    def test_walltime_defaults_to_duration(self):
        spec = JobSpec(ncores=1, duration=7.5)
        assert spec.walltime == 7.5

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            JobSpec(ncores=0)
        with pytest.raises(ValueError):
            JobSpec(ncores=1, duration=-1)
        with pytest.raises(ValueError):
            JobSpec(ncores=1, kind=JobKind.INSTANCE,
                    body=lambda j, i: iter(()))

    def test_job_ids_unique(self):
        sim, inst = make_instance()
        a = inst.submit(JobSpec(ncores=1, duration=1))
        b = inst.submit(JobSpec(ncores=1, duration=1))
        assert a.jobid != b.jobid


class TestProgramJobs:
    def test_lifecycle_and_timing(self):
        sim, inst = make_instance()
        job = inst.submit(JobSpec(ncores=8, duration=3.0))
        assert job.state is JobState.PENDING
        sim.run()
        assert job.state is JobState.COMPLETE
        assert job.wait_time == 0.0
        assert job.run_time == 3.0
        assert inst.pool.total_free_cores() == 64

    def test_body_replaces_duration(self):
        sim, inst = make_instance()
        trace = []

        def body(job, instance):
            trace.append(("start", instance.sim.now))
            yield instance.sim.timeout(2.0)
            trace.append(("end", instance.sim.now))

        job = inst.submit(JobSpec(ncores=4, duration=99.0, body=body))
        sim.run()
        assert job.state is JobState.COMPLETE
        assert trace == [("start", 0.0), ("end", 2.0)]
        assert job.run_time == 2.0

    def test_failing_body_marks_job_failed(self):
        sim, inst = make_instance()

        def bad_body(job, instance):
            yield instance.sim.timeout(1.0)
            raise RuntimeError("app crashed")

        job = inst.submit(JobSpec(ncores=4, body=bad_body))
        sim.run()
        assert job.state is JobState.FAILED
        assert "app crashed" in job.error
        assert inst.pool.total_free_cores() == 64  # resources released

    def test_zero_duration_job(self):
        sim, inst = make_instance()
        job = inst.submit(JobSpec(ncores=1))
        sim.run()
        assert job.state is JobState.COMPLETE and job.run_time == 0.0

    def test_cancel_pending_job(self):
        sim, inst = make_instance(ncores=16)
        running = inst.submit(JobSpec(ncores=16, duration=10.0))
        queued = inst.submit(JobSpec(ncores=16, duration=10.0))
        sim.run(until=1.0)
        inst.cancel(queued)
        sim.run()
        assert queued.state is JobState.CANCELLED
        assert inst.makespan() == 10.0

    def test_drain_event(self):
        sim, inst = make_instance()
        inst.submit(JobSpec(ncores=8, duration=2.0))
        inst.submit(JobSpec(ncores=8, duration=4.0))
        ev = inst.drain()
        sim.run()
        assert ev.triggered
        assert ev.value["jobs"] == 2
        assert ev.value["makespan"] == 4.0

    def test_drain_when_already_empty(self):
        sim, inst = make_instance()
        ev = inst.drain()
        assert ev.triggered

    def test_submit_after_shutdown_rejected(self):
        sim, inst = make_instance()
        inst.shutdown()
        with pytest.raises(RuntimeError):
            inst.submit(JobSpec(ncores=1, duration=1))

    def test_utilization_tracks_busy_cores(self):
        sim, inst = make_instance(ncores=16)
        inst.submit(JobSpec(ncores=16, duration=5.0))
        sim.run()
        assert inst.utilization() == pytest.approx(1.0)

    def test_mean_wait(self):
        sim, inst = make_instance(ncores=16)
        inst.submit(JobSpec(ncores=16, duration=5.0))
        inst.submit(JobSpec(ncores=16, duration=5.0))
        sim.run()
        assert inst.mean_wait() == pytest.approx(2.5)


class TestInstanceJobs:
    def test_nested_instance_runs_subjobs(self):
        sim, inst = make_instance(ncores=64)
        members = [JobSpec(ncores=8, duration=2.0) for _ in range(8)]
        ens = inst.submit(make_ensemble_spec("ens", 32, members))
        sim.run()
        assert ens.state is JobState.COMPLETE
        assert ens.child is not None
        assert len(ens.child.completed_jobs()) == 8
        # 8 x 8-core 2 s jobs on 32 cores: two waves.
        assert ens.run_time == pytest.approx(4.0)

    def test_parent_bounding_rule_holds(self):
        sim, inst = make_instance(ncores=64)
        ens = inst.submit(make_ensemble_spec(
            "ens", 16, [JobSpec(ncores=4, duration=1.0)]))
        sim.run(until=0.5)
        check_parent_bounding(inst, ens)
        assert ens.child.pool.total_cores() == 16

    def test_child_cannot_overallocate(self):
        sim, inst = make_instance(ncores=64)
        # The child instance gets 16 cores; a 17-core subjob can never
        # start inside it and the child would hang — so instead verify
        # the child pool rejects it directly.
        ens = inst.submit(make_ensemble_spec(
            "b", 16, [JobSpec(ncores=8, duration=0.5)]))
        sim.run()
        child_pool_size = ens.child.pool.total_cores()
        assert child_pool_size == 16

    def test_child_policy_override(self):
        sim, inst = make_instance(ncores=32, policy=FcfsPolicy())
        ens = inst.submit(make_ensemble_spec(
            "p", 16, [JobSpec(ncores=4, duration=1.0)],
            child_policy=SjfPolicy))
        sim.run()
        assert isinstance(ens.child.policy, SjfPolicy)

    def test_siblings_schedule_concurrently(self):
        sim, inst = make_instance(ncores=64)
        members = [JobSpec(ncores=4, duration=1.0) for _ in range(16)]
        parts = partitioned_specs(64, 4, members)
        jobs = [inst.submit(p) for p in parts]
        sim.run()
        # Four children, 16 cores each, 4 members each of 4 cores:
        # everything runs in one 1-second wave.
        assert all(j.state is JobState.COMPLETE for j in jobs)
        assert inst.makespan() == pytest.approx(1.0)

    def test_walk_and_depth(self):
        sim, inst = make_instance(ncores=64)
        grandchild = make_ensemble_spec(
            "gc", 8, [JobSpec(ncores=2, duration=1.0)])
        child = JobSpec(ncores=16, kind=JobKind.INSTANCE, name="c",
                        subjobs=[grandchild])
        inst.submit(child)
        sim.run(until=0.5)
        names = [i.name for i in walk_instances(inst)]
        assert "c" in names and "gc" in names
        assert instance_tree_depth(inst) == 2

    def test_empty_instance_job_completes(self):
        sim, inst = make_instance()
        job = inst.submit(JobSpec(ncores=8, kind=JobKind.INSTANCE))
        sim.run()
        assert job.state is JobState.COMPLETE

    def test_partitioned_specs_validation(self):
        with pytest.raises(ValueError):
            partitioned_specs(63, 4, [])


class TestElasticity:
    def test_grow_within_local_slack(self):
        sim, inst = make_instance(ncores=32)
        log = {}

        def body(job, instance):
            yield instance.sim.timeout(0.5)
            log["got"] = instance.request_grow(job, 8)
            log["ncores"] = job.allocation.ncores

        inst.submit(JobSpec(ncores=8, body=body))
        sim.run()
        assert log == {"got": 8, "ncores": 16}

    def test_grow_denied_when_full(self):
        sim, inst = make_instance(ncores=32)
        log = {}

        def body(job, instance):
            yield instance.sim.timeout(0.5)
            log["got"] = instance.request_grow(job, 8)

        inst.submit(JobSpec(ncores=28, duration=5.0))
        inst2 = inst.submit(JobSpec(ncores=4, body=body))
        sim.run()
        assert log["got"] == 0

    def test_shrink_unblocks_queued_job(self):
        sim, inst = make_instance(ncores=32)

        def body(job, instance):
            yield instance.sim.timeout(1.0)
            instance.request_shrink(job, 16)
            yield instance.sim.timeout(5.0)

        inst.submit(JobSpec(ncores=32, body=body))
        waiting = inst.submit(JobSpec(ncores=16, duration=1.0))
        sim.run()
        assert waiting.start_time == pytest.approx(1.0)

    def test_parental_consent_chain(self):
        """A grow that exceeds the child's grant climbs to the parent,
        which extends the grant (grafting new cores into the child's
        world) — the paper's grow protocol."""
        sim, inst = make_instance(ncores=64)
        log = {}

        def member_body(job, instance):
            yield instance.sim.timeout(0.5)
            # instance here is the CHILD; it has 16 cores, all taken by
            # this 16-core member, so the grow must go to the parent.
            log["got"] = instance.request_grow(job, 8)
            log["child_total"] = instance.pool.total_cores()

        child_spec = make_ensemble_spec(
            "elastic", 16, [JobSpec(ncores=16, body=member_body)])
        inst.submit(child_spec)
        sim.run()
        assert log["got"] == 8
        assert log["child_total"] == 24  # grant grew from 16 to 24

    def test_consent_denied_when_parent_full(self):
        sim, inst = make_instance(ncores=32)
        log = {}

        def member_body(job, instance):
            yield instance.sim.timeout(0.5)
            log["got"] = instance.request_grow(job, 8)

        inst.submit(JobSpec(ncores=16, duration=5.0))  # hog half
        child_spec = make_ensemble_spec(
            "denied", 16, [JobSpec(ncores=16, body=member_body)])
        inst.submit(child_spec)
        sim.run()
        assert log["got"] == 0

    def test_grow_on_non_running_job_raises(self):
        sim, inst = make_instance()
        job = Job(JobSpec(ncores=1), inst)
        with pytest.raises(AllocationError):
            inst.request_grow(job, 1)


class TestSchedulerParallelismEffect:
    def test_hierarchy_amortizes_decision_cost(self):
        """The paper's core scalability argument: with a per-pass
        decision cost, two-level scheduling beats one monolithic queue
        on many small jobs."""
        cost = AffineCostModel(base=5e-3, per_job=1e-3, node_factor=0.0)
        members = [JobSpec(ncores=4, duration=0.5) for _ in range(64)]

        sim1 = Simulation(seed=0)
        g1 = build_cluster_graph("m", 1, 4, sockets=2, cores_per_socket=8)
        flat = FluxInstance(sim1, ResourcePool(g1), cost_model=cost)
        for m in members:
            flat.submit(JobSpec(ncores=m.ncores, duration=m.duration))
        sim1.run()

        sim2 = Simulation(seed=0)
        g2 = build_cluster_graph("m", 1, 4, sockets=2, cores_per_socket=8)
        root = FluxInstance(sim2, ResourcePool(g2), cost_model=cost)
        for p in partitioned_specs(64, 4, members):
            root.submit(p)
        sim2.run()

        assert root.makespan() < flat.makespan()
