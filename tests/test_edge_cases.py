"""Edge-case tests across the stack: lifecycle, teardown, unusual
shapes, and error paths not covered by the main suites."""

import pytest

from repro import ModuleSpec, make_cluster, standard_session
from repro.cmb.api import RpcError
from repro.cmb.message import Message
from repro.cmb.module import CommsModule, NoHandlerError
from repro.cmb.session import CommsSession
from repro.cmb.topology import TreeTopology
from repro.kvs import KvsClient, KvsModule
from repro.sim.cluster import make_cluster as mk


class EchoModule(CommsModule):
    name = "echo"

    def req_ping(self, msg: Message) -> None:
        self.respond(msg, {"rank": self.rank})


def run_proc(cluster, gen):
    proc = cluster.sim.spawn(gen)
    return cluster.sim.run_until_complete(proc)


class TestModuleLifecycle:
    def test_module_must_have_name(self):
        class Nameless(CommsModule):
            name = ""

        cluster = mk(2)
        session = CommsSession(cluster)
        with pytest.raises(ValueError):
            Nameless(session.brokers[0])

    def test_unload_module_stops_service(self):
        cluster = mk(2)
        session = CommsSession(cluster,
                               modules=[ModuleSpec(EchoModule)]).start()
        session.brokers[0].unload_module("echo")
        session.brokers[1].unload_module("echo")

        def client(h):
            with pytest.raises(RpcError, match="no module"):
                yield h.rpc("echo.ping", {})
            return "ok"

        h = session.connect(1, collective=False)
        assert run_proc(cluster, client(h)) == "ok"

    def test_load_module_after_start(self):
        cluster = mk(2)
        session = CommsSession(cluster).start()
        session.load_module(ModuleSpec(EchoModule))

        def client(h):
            return (yield h.rpc("echo.ping", {}))

        h = session.connect(1, collective=False)
        assert run_proc(cluster, client(h)) == {"rank": 1}

    def test_double_start_rejected(self):
        cluster = mk(2)
        session = CommsSession(cluster).start()
        with pytest.raises(RuntimeError):
            session.start()

    def test_unload_unknown_module_raises(self):
        cluster = mk(1)
        session = CommsSession(cluster).start()
        with pytest.raises(KeyError):
            session.brokers[0].unload_module("ghost")

    def test_dispatch_missing_handler_is_nohandler(self):
        cluster = mk(1)
        session = CommsSession(cluster)
        mod = EchoModule(session.brokers[0])
        with pytest.raises(NoHandlerError):
            mod.dispatch_request(Message(topic="echo.nope"))


class TestSessionTeardown:
    def test_stop_halts_brokers(self):
        cluster = mk(4)
        session = standard_session(cluster, with_heartbeat=True,
                                   hb_period=0.01, hb_max_epochs=1000)
        session.start()
        cluster.sim.run(until=0.05)
        session.stop()
        epoch_at_stop = session.module_at(0, "hb").epoch
        cluster.sim.run(until=1.0)
        # No more pulses processed after stop.
        assert session.module_at(0, "hb").epoch <= epoch_at_stop + 1

    def test_log_without_log_module_is_noop(self):
        cluster = mk(1)
        session = CommsSession(cluster).start()
        session.brokers[0].log("err", "into the void")  # must not raise


class TestHandleEdges:
    def test_close_is_idempotent_for_subscriptions(self):
        cluster = mk(2)
        session = CommsSession(cluster).start()
        h = session.connect(1)
        h.subscribe("x.", lambda m: None)
        h.close()
        h.close()  # second close must not raise
        assert session.total_procs == 0

    def test_publish_from_handle_reaches_other_node(self):
        cluster = mk(4)
        session = CommsSession(cluster).start()
        h_pub = session.connect(3, collective=False)
        h_sub = session.connect(1, collective=False)

        def client():
            ev = h_sub.wait_event("news.")
            h_pub.publish("news.flash", {"n": 1})
            msg = yield ev
            return msg.payload

        assert run_proc(cluster, client()) == {"n": 1}

    def test_concurrent_rpcs_from_one_handle(self):
        cluster = mk(4)
        session = CommsSession(cluster,
                               modules=[ModuleSpec(EchoModule)]).start()
        h = session.connect(2, collective=False)

        def client():
            evs = [h.rpc("echo.ping", {"i": i}) for i in range(10)]
            results = yield cluster.sim.all_of(evs)
            return results

        results = run_proc(cluster, client())
        assert all(r == {"rank": 2} for r in results)


class TestKvsEdges:
    def _session(self, n=4):
        cluster = mk(n)
        session = CommsSession(cluster, topology=TreeTopology(n),
                               modules=[ModuleSpec(KvsModule)]).start()
        return cluster, session

    def test_getroot_rpc(self):
        cluster, session = self._session()

        def client():
            kvs = KvsClient(session.connect(2))
            yield kvs.put("k", 1)
            yield kvs.commit()
            root = yield kvs.handle.rpc("kvs.getroot")
            return root

        root = run_proc(cluster, client())
        assert root["version"] == 1 and len(root["rootref"]) == 40

    def test_empty_commit_bumps_version(self):
        cluster, session = self._session()

        def client():
            kvs = KvsClient(session.connect(3))
            r1 = yield kvs.commit()
            r2 = yield kvs.commit()
            return r1["version"], r2["version"]

        assert run_proc(cluster, client()) == (1, 2)

    def test_unlink_through_fence(self):
        cluster, session = self._session()

        def client():
            kvs = KvsClient(session.connect(1))
            yield kvs.put("gone.soon", 1)
            yield kvs.fence("f1", 1)
            yield kvs.unlink("gone.soon")
            yield kvs.fence("f2", 1)
            with pytest.raises(RpcError, match="not found"):
                yield kvs.get("gone.soon")
            return "ok"

        assert run_proc(cluster, client()) == "ok"

    def test_wait_version_already_satisfied(self):
        cluster, session = self._session()

        def client():
            kvs = KvsClient(session.connect(0))
            yield kvs.put("k", 1)
            yield kvs.commit()
            resp = yield kvs.wait_version(1)  # already there
            return resp["version"]

        assert run_proc(cluster, client()) >= 1

    def test_overwrite_same_key_many_times(self):
        cluster, session = self._session()

        def client():
            kvs = KvsClient(session.connect(2))
            for i in range(10):
                yield kvs.put("hot", i)
            yield kvs.commit()
            return (yield kvs.get("hot"))

        assert run_proc(cluster, client()) == 9

    def test_large_nested_path(self):
        cluster, session = self._session()
        deep = ".".join(f"d{i}" for i in range(20))

        def client():
            kvs = KvsClient(session.connect(1))
            yield kvs.put(deep, "bottom")
            yield kvs.commit()
            return (yield kvs.get(deep))

        assert run_proc(cluster, client()) == "bottom"

    def test_non_string_json_values(self):
        cluster, session = self._session()
        values = [None, True, 3.5, [1, [2, 3]], {"a": {"b": 1}}, 0]

        def client():
            kvs = KvsClient(session.connect(3))
            for i, v in enumerate(values):
                yield kvs.put(f"types.v{i}", v)
            yield kvs.commit()
            out = []
            for i in range(len(values)):
                out.append((yield kvs.get(f"types.v{i}")))
            return out

        assert run_proc(cluster, client()) == values

    def test_get_on_virgin_store_fails_cleanly(self):
        cluster, session = self._session()

        def client():
            kvs = KvsClient(session.connect(2))
            with pytest.raises(RpcError):
                yield kvs.get("never.written")
            return "ok"

        assert run_proc(cluster, client()) == "ok"


class TestWexecEdges:
    def test_two_concurrent_jobs(self):
        def t(ctx):
            ctx.print(f"{ctx.jobid}:{ctx.taskrank}")
            yield ctx.sim.timeout(1e-3)

        cluster = mk(4)
        session = standard_session(cluster, task_registry={"t": t}).start()

        def client():
            h = session.connect(0, collective=False)
            done = {}
            h.subscribe("wexec.done",
                        lambda m: done.setdefault(m.payload["jobid"],
                                                  m.payload))
            yield h.rpc("wexec.run", {"jobid": "A", "task": "t",
                                      "nprocs": 8})
            yield h.rpc("wexec.run", {"jobid": "B", "task": "t",
                                      "nprocs": 4})
            while len(done) < 2:
                yield cluster.sim.timeout(1e-4)
            return done

        done = run_proc(cluster, client())
        assert done["A"]["status"] == 0 and done["B"]["status"] == 0

    def test_single_task_job(self):
        def t(ctx):
            ctx.print("solo")
            yield ctx.sim.timeout(1e-4)

        cluster = mk(4)
        session = standard_session(cluster, task_registry={"t": t}).start()

        def client():
            h = session.connect(2, collective=False)
            done = h.wait_event("wexec.done")
            yield h.rpc("wexec.run", {"jobid": "s", "task": "t",
                                      "nprocs": 1})
            msg = yield done
            return msg.payload

        payload = run_proc(cluster, client())
        assert list(payload["rcs"]) == ["0"]

    def test_zero_nprocs_rejected(self):
        cluster = mk(2)
        session = standard_session(cluster,
                                   task_registry={"t": lambda c: iter(())}
                                   ).start()

        def client():
            h = session.connect(0, collective=False)
            with pytest.raises(RpcError, match="bad job shape"):
                yield h.rpc("wexec.run", {"jobid": "z", "task": "t",
                                          "nprocs": 0})
            return "ok"

        assert run_proc(cluster, client()) == "ok"
