"""Tests for rigid / moldable / malleable scheduling (paper Challenge 3:
"rigid vs. moldable vs. malleable scheduling against different workload
and resource types")."""

import pytest

from repro.core import FluxInstance, JobSpec, JobState
from repro.resource import ResourcePool, build_cluster_graph
from repro.sched import FcfsPolicy
from repro.sim import Simulation


def make_instance(ncores=32):
    sim = Simulation(seed=0)
    graph = build_cluster_graph("e", n_racks=1, nodes_per_rack=ncores // 8,
                                sockets=1, cores_per_socket=8)
    return sim, FluxInstance(sim, ResourcePool(graph))


class TestSpecValidation:
    def test_rigid_by_default(self):
        spec = JobSpec(ncores=4, duration=1.0)
        assert not spec.is_moldable and not spec.malleable

    def test_moldable_range(self):
        spec = JobSpec(ncores=8, duration=1.0, min_cores=2, max_cores=16)
        assert spec.is_moldable

    def test_malleable_defaults_min_to_preferred(self):
        spec = JobSpec(ncores=8, duration=1.0, malleable=True, max_cores=16)
        assert spec.min_cores == 8

    def test_bad_ranges_rejected(self):
        with pytest.raises(ValueError):
            JobSpec(ncores=4, duration=1, min_cores=8)
        with pytest.raises(ValueError):
            JobSpec(ncores=4, duration=1, max_cores=2)
        with pytest.raises(ValueError):
            JobSpec(ncores=4, duration=1, min_cores=0)

    def test_shapes_only_for_duration_jobs(self):
        with pytest.raises(ValueError):
            JobSpec(ncores=4, min_cores=2, body=lambda j, i: iter(()))
        with pytest.raises(ValueError):
            JobSpec(ncores=4, min_cores=2, task="t")

    def test_serial_fraction_range(self):
        with pytest.raises(ValueError):
            JobSpec(ncores=1, serial_fraction=1.5)


class TestRuntimeModel:
    def test_preferred_size_gives_nominal_duration(self):
        spec = JobSpec(ncores=8, duration=10.0, serial_fraction=0.2)
        assert spec.runtime_at(8) == pytest.approx(10.0)

    def test_perfect_scaling_without_serial_fraction(self):
        spec = JobSpec(ncores=8, duration=10.0)
        assert spec.runtime_at(16) == pytest.approx(5.0)
        assert spec.runtime_at(4) == pytest.approx(20.0)

    def test_amdahl_limits_speedup(self):
        spec = JobSpec(ncores=8, duration=10.0, serial_fraction=0.5)
        # Infinite cores can at best halve the runtime.
        assert spec.runtime_at(8000) > 5.0
        assert spec.runtime_at(16) == pytest.approx(7.5)

    def test_invalid_core_count(self):
        with pytest.raises(ValueError):
            JobSpec(ncores=1, duration=1.0).runtime_at(0)


class TestMoldable:
    def test_molds_down_to_fit_now(self):
        sim, inst = make_instance(ncores=32)
        inst.submit(JobSpec(ncores=24, duration=10.0))  # leaves 8 free
        moldable = inst.submit(JobSpec(ncores=16, duration=4.0,
                                       min_cores=4))
        sim.run(until=1.0)
        assert moldable.state is JobState.RUNNING
        assert moldable.allocation.ncores == 8  # molded into the hole
        sim.run()
        # Ran at half the preferred size -> twice the nominal duration.
        assert moldable.run_time == pytest.approx(8.0)

    def test_molds_up_when_room(self):
        sim, inst = make_instance(ncores=32)
        job = inst.submit(JobSpec(ncores=8, duration=8.0, max_cores=32))
        sim.run()
        assert job.run_time == pytest.approx(2.0)  # 4x cores, 4x speed

    def test_refuses_below_min(self):
        sim, inst = make_instance(ncores=32)
        hog = inst.submit(JobSpec(ncores=30, duration=5.0))
        picky = inst.submit(JobSpec(ncores=16, duration=1.0, min_cores=4))
        sim.run(until=1.0)
        assert picky.state is JobState.PENDING  # only 2 free < min 4
        sim.run()
        assert picky.state is JobState.COMPLETE

    def test_rigid_job_timing_unchanged(self):
        sim, inst = make_instance(ncores=32)
        job = inst.submit(JobSpec(ncores=8, duration=3.0))
        sim.run()
        assert job.run_time == pytest.approx(3.0)


class TestMalleable:
    def test_expands_into_idle_cores(self):
        sim, inst = make_instance(ncores=32)
        job = inst.submit(JobSpec(ncores=8, duration=8.0, malleable=True,
                                  max_cores=32))
        sim.run(until=0.1)
        assert job.allocation.ncores == 32  # grabbed the idle machine
        sim.run()
        assert job.run_time == pytest.approx(2.0, rel=0.1)

    def test_shrinks_to_admit_queued_job(self):
        sim, inst = make_instance(ncores=32)
        elastic = inst.submit(JobSpec(ncores=8, duration=8.0,
                                      malleable=True, min_cores=8,
                                      max_cores=32))
        sim.run(until=1.0)
        assert elastic.allocation.ncores == 32
        rigid = inst.submit(JobSpec(ncores=16, duration=2.0))
        sim.run(until=1.5)
        assert rigid.state is JobState.RUNNING
        assert elastic.allocation.ncores == 16  # gave half back
        sim.run()
        assert elastic.state is JobState.COMPLETE
        assert rigid.state is JobState.COMPLETE

    def test_work_conserved_across_resizes(self):
        """Total core-seconds consumed equals the job's work regardless
        of the resize history (perfect-scaling model)."""
        sim, inst = make_instance(ncores=32)
        elastic = inst.submit(JobSpec(ncores=8, duration=8.0,
                                      malleable=True, min_cores=4,
                                      max_cores=32))
        # Perturb it twice with rigid arrivals.
        inst.submit(JobSpec(ncores=16, duration=1.0))
        sim.run(until=2.0)
        inst.submit(JobSpec(ncores=24, duration=1.0))
        sim.run()
        assert elastic.state is JobState.COMPLETE
        # Work = 8 cores x 8 s = 64 core-seconds; utilization integral
        # should reflect all three jobs' work.
        expected = 64 + 16 * 1.0 + 24 * 1.0
        measured = inst._busy_area
        assert measured == pytest.approx(expected, rel=0.02)

    def test_never_shrinks_below_min(self):
        sim, inst = make_instance(ncores=32)
        elastic = inst.submit(JobSpec(ncores=16, duration=4.0,
                                      malleable=True, min_cores=16,
                                      max_cores=32))
        sim.run(until=0.5)
        blocked = inst.submit(JobSpec(ncores=32, duration=1.0))
        sim.run(until=1.0)
        assert elastic.allocation.ncores >= 16
        assert blocked.state is JobState.PENDING
        sim.run()
        assert blocked.state is JobState.COMPLETE

    def test_two_malleable_jobs_share_reclamation(self):
        sim, inst = make_instance(ncores=32)
        a = inst.submit(JobSpec(ncores=8, duration=6.0, malleable=True,
                                min_cores=4, max_cores=16))
        b = inst.submit(JobSpec(ncores=8, duration=6.0, malleable=True,
                                min_cores=4, max_cores=16))
        sim.run(until=0.5)
        assert a.allocation.ncores + b.allocation.ncores == 32
        rigid = inst.submit(JobSpec(ncores=20, duration=1.0))
        sim.run(until=1.2)
        assert rigid.state is JobState.RUNNING
        assert a.allocation.ncores >= 4 and b.allocation.ncores >= 4
        sim.run()
        assert all(j.state is JobState.COMPLETE for j in (a, b, rigid))

    def test_malleable_faster_than_rigid_on_bursty_load(self):
        """Elasticity pays: the same workload finishes sooner when the
        long job can donate and reabsorb cores."""
        def run(malleable):
            sim, inst = make_instance(ncores=32)
            inst.submit(JobSpec(ncores=32 if not malleable else 8,
                                duration=8.0 if not malleable else 32.0,
                                malleable=malleable, min_cores=8,
                                max_cores=32))
            # Same work either way: 256 core-seconds.
            for _ in range(3):
                inst.submit(JobSpec(ncores=8, duration=1.0))
            sim.run()
            return inst.makespan()

        assert run(True) < run(False)
