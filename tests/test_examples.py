"""Every example script must run clean end to end.

Each is executed in a subprocess (as a user would run it) with a
timeout; a failing example is a failing test, so the documentation
never rots.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"

EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def run_example(name: str, timeout: float = 180.0):
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True, text=True, timeout=timeout)


def test_all_examples_discovered():
    assert len(EXAMPLES) >= 5
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs_clean(name):
    proc = run_example(name)
    assert proc.returncode == 0, (
        f"{name} failed:\n{proc.stdout}\n{proc.stderr}")
    assert proc.stdout.strip(), f"{name} produced no output"
    assert "Traceback" not in proc.stderr


def test_quickstart_output_shape():
    out = run_example("quickstart.py").stdout
    assert "exchanged endpoints" in out
    assert "status 0" in out


def test_uq_ensemble_reports_speedup():
    out = run_example("uq_ensemble.py").stdout
    assert "speedup" in out
    line = [l for l in out.splitlines() if "speedup" in l][0]
    speedup = float(line.split(":")[1].strip().rstrip("x"))
    assert speedup > 1.2


def test_sharded_namespaces_reports_recovery():
    out = run_example("sharded_namespaces.py").stdout
    assert "commits/s" in out and "(1.00x)" in out
