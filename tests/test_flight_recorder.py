"""Flight recorder: ring semantics and always-on broker integration.

The :class:`~repro.obs.flight.FlightRecorder` is the per-broker black
box behind the post-mortem tentpole: always on, O(1) append, pure
observer.  These tests pin the ring arithmetic (wrap, peak, dropped,
ordering) and the integration contract — every broker records its
message-plane activity, and same-seed runs produce bit-identical
rings (the "pure observer" promise, stronger than the SAN105
fingerprint which only sees the event stream).
"""

from repro import make_cluster, standard_session
from repro.kvs import KvsClient
from repro.obs import FlightRecorder


# ----------------------------------------------------------------------
# ring unit behaviour
# ----------------------------------------------------------------------
class TestRing:
    def test_capacity_rounds_up_to_power_of_two(self):
        assert FlightRecorder(1).capacity == 1
        assert FlightRecorder(3).capacity == 4
        assert FlightRecorder(1000).capacity == 1024
        assert FlightRecorder(1024).capacity == 1024

    def test_append_below_capacity(self):
        fr = FlightRecorder(8)
        for i in range(5):
            fr.rec(float(i), "k", i)
        assert fr.appended == 5
        assert fr.dropped == 0
        assert fr.peak == 5
        assert len(fr) == 5
        assert [r[3] for r in fr.records()] == [0, 1, 2, 3, 4]

    def test_wrap_overwrites_oldest(self):
        fr = FlightRecorder(4)
        for i in range(10):
            fr.rec(float(i), "k", i)
        assert fr.appended == 10
        assert fr.dropped == 6
        assert fr.peak == fr.capacity == 4
        # Retained records are the newest 4, oldest first.
        assert [r[3] for r in fr.records()] == [6, 7, 8, 9]

    def test_records_carry_monotonic_seq(self):
        fr = FlightRecorder(4)
        for i in range(7):
            fr.rec(0.0, "k")          # identical timestamps
        seqs = [r[1] for r in fr.records()]
        assert seqs == sorted(seqs) == [3, 4, 5, 6]

    def test_record_shape(self):
        fr = FlightRecorder(2)
        fr.rec(1.5, "send", "topic", 3, ("x", 1))
        t, seq, kind, a, b, c = fr.records()[0]
        assert (t, seq, kind, a, b, c) == (1.5, 0, "send", "topic", 3,
                                           ("x", 1))

    def test_snapshot_is_jsonable_shape(self):
        fr = FlightRecorder(4)
        fr.rec(0.1, "k", 1)
        snap = fr.snapshot()
        assert snap["capacity"] == 4
        assert snap["appended"] == 1
        assert snap["dropped"] == 0
        assert snap["peak"] == 1
        assert snap["records"] == [[0.1, 0, "k", 1, None, None]]

    def test_clear_resets(self):
        fr = FlightRecorder(4)
        for i in range(9):
            fr.rec(0.0, "k")
        fr.clear()
        assert fr.appended == 0 and fr.dropped == 0
        assert fr.records() == []


# ----------------------------------------------------------------------
# broker integration: always on, deterministic
# ----------------------------------------------------------------------
def _run_workload(seed: int = 3):
    cluster = make_cluster(8, seed=seed)
    session = standard_session(cluster)
    session.start()
    sim = cluster.sim

    def client(rank):
        kvs = KvsClient(session.connect(rank, collective=False))
        yield kvs.put(f"flight.r{rank}", rank)
        yield kvs.commit()
        value = yield kvs.get(f"flight.r{rank}")
        assert value == rank

    procs = [sim.spawn(client(r)) for r in (2, 5, 7)]
    sim.run(until=30.0)
    assert all(p.triggered and p.ok for p in procs)
    snaps = session.flight_snapshots()
    session.stop()
    return snaps


def test_brokers_record_without_tracing_enabled():
    """The recorder is on even with tracing/sanitizers off."""
    snaps = _run_workload()
    assert set(snaps) == set(range(8))
    # The root (rank 0, KVS master) dispatched the commits, applied
    # the new root versions, and published the setroot events.
    kinds_root = {r[2] for r in snaps[0]["records"]}
    assert "dispatch" in kinds_root
    assert "kvs_apply_root" in kinds_root
    assert "event" in kinds_root
    total = sum(s["appended"] for s in snaps.values())
    assert total > 0


def _normalize(snaps):
    """Renumber the process-global request ids some records carry
    (msgid allocation never resets between runs in one process) so
    same-seed rings can be compared record for record."""
    out = {}
    for rank, s in snaps.items():
        ids: dict = {}
        recs = []
        for t, seq, kind, a, b, c in (tuple(r) for r in s["records"]):
            if kind in ("dispatch", "replay", "dup_parked") \
                    and b is not None:
                b = ids.setdefault(b, len(ids))
            recs.append((t, seq, kind, a, b, c))
        out[rank] = dict(s, records=recs)
    return out


def test_same_seed_rings_identical():
    """Pure-observer contract: two same-seed runs must leave every
    broker's ring identical, record for record (modulo the process-
    global request-id counter, renumbered by ``_normalize``)."""
    assert _normalize(_run_workload(seed=11)) == \
        _normalize(_run_workload(seed=11))


def test_session_flight_peak_and_plane_bytes():
    cluster = make_cluster(4, seed=1)
    session = standard_session(cluster)
    session.start()
    sim = cluster.sim

    def client():
        kvs = KvsClient(session.connect(3, collective=False))
        yield kvs.put("a", 1)
        yield kvs.commit()

    proc = sim.spawn(client())
    sim.run(until=10.0)
    assert proc.triggered and proc.ok
    assert session.flight_peak() > 0
    planes = session.plane_bytes()
    # The commit crossed the tree plane; event planes saw the setroot.
    assert planes.get("tree", 0) > 0
    assert sum(planes.values()) > 0
    session.stop()
