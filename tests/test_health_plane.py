"""Live health plane: activation, tree reduction, threshold states.

The ``health`` module samples each broker's vitals on every heartbeat
pulse, tree-reduces the census to the root, and publishes a
``health.update`` event only on cluster-state transitions.  These
tests pin the contract: passive until activated (zero traffic, golden
event streams untouched), correct broker accounting through the
reduction, threshold-driven ok/degraded/overloaded classification,
and survival of mid-run broker death.
"""

import json

import pytest

from repro import make_cluster, standard_session
from repro.cmb.modules import HealthModule, HeartbeatModule
from repro.cmb.modules.health import HEALTH_STATES
from repro.cmb.session import CommsSession, ModuleSpec
from repro.stats import validate_stats

from .chaos import run_chaos_workload


def make_health_session(n=8, max_epochs=20, thresholds=None):
    cluster = make_cluster(n, seed=3)
    session = CommsSession(cluster, modules=[
        ModuleSpec(HealthModule, thresholds=thresholds),
        ModuleSpec(HeartbeatModule, period=0.05, max_epochs=max_epochs),
    ]).start()
    return cluster, session


def run_proc(cluster, gen):
    proc = cluster.sim.spawn(gen)
    return cluster.sim.run_until_complete(proc)


# ----------------------------------------------------------------------
# passivity
# ----------------------------------------------------------------------
def test_inactive_plane_sends_nothing():
    """Heartbeats alone must not make the health module talk — the
    module is loaded in every standard session, so any traffic here
    would perturb the golden fingerprints."""
    cluster, session = make_health_session()
    cluster.sim.run()
    counts = session.message_counts()
    assert not any(mod == "health" for (mod, _plane, _kind) in counts)
    root = session.brokers[0].modules["health"]
    assert root.views == []
    assert root.cluster_state == "unknown"
    assert root.cluster_view()["epoch"] == -1


# ----------------------------------------------------------------------
# activation + reduction
# ----------------------------------------------------------------------
def test_activation_reduces_cluster_view_at_root():
    cluster, session = make_health_session()

    def client(h):
        resp = yield h.rpc("health.activate", {})
        assert resp["active"]
        yield cluster.sim.timeout(0.6)
        # The reduced view lives at the root broker.
        root_h = session.connect(0, collective=False)
        return (yield root_h.rpc("health.view", {}))

    resp = run_proc(cluster, client(session.connect(5, collective=False)))
    view = resp["view"]
    assert resp["n_views"] > 0
    assert view["state"] == "ok"
    assert view["brokers"] == 8
    assert view["counts"] == {"ok": 8, "degraded": 0, "overloaded": 0}
    assert view["cluster_state"] == "ok"
    root = session.brokers[0].modules["health"]
    assert all(v["brokers"] == 8 for v in root.views)
    # Healthy cluster: no state transition beyond unknown -> ok, and
    # therefore exactly one health.update fanout.
    assert root.cluster_state == "ok"


def test_update_event_only_on_transition():
    cluster, session = make_health_session()
    updates = []
    session.brokers[6].subscribe("health.update",
                                 lambda m: updates.append(m.payload))

    def client(h):
        yield h.rpc("health.activate", {})
        yield cluster.sim.timeout(0.8)

    run_proc(cluster, client(session.connect(2, collective=False)))
    # Many epochs completed, but the state only changed once
    # (unknown -> ok), so exactly one event was published.
    assert [u["state"] for u in updates] == ["ok"]
    root = session.brokers[0].modules["health"]
    assert len(root.views) > 3


def test_threshold_override_degrades_cluster():
    """Activation-time thresholds propagate to every broker; an
    impossible inbox bar classifies everyone as degraded."""
    cluster, session = make_health_session()
    updates = []
    session.brokers[3].subscribe("health.update",
                                 lambda m: updates.append(m.payload))

    def client(h):
        yield h.rpc("health.activate",
                    {"thresholds": {"inbox_degraded": 0}})
        yield cluster.sim.timeout(0.6)
        root_h = session.connect(0, collective=False)
        return (yield root_h.rpc("health.view", {}))

    resp = run_proc(cluster, client(session.connect(4, collective=False)))
    assert resp["view"]["state"] == "degraded"
    assert resp["view"]["counts"]["degraded"] == 8
    assert updates and updates[0]["state"] == "degraded"
    root = session.brokers[0].modules["health"]
    assert root.cluster_state == "degraded"


def test_overloaded_outranks_degraded():
    cluster, session = make_health_session(
        thresholds={"inbox_degraded": 0, "inbox_overloaded": 0})

    def client(h):
        yield h.rpc("health.activate", {})
        yield cluster.sim.timeout(0.5)
        root_h = session.connect(0, collective=False)
        return (yield root_h.rpc("health.view", {}))

    resp = run_proc(cluster, client(session.connect(1, collective=False)))
    assert resp["view"]["state"] == "overloaded"
    assert resp["view"]["counts"]["overloaded"] == 8


def test_deactivate_stops_reduction():
    cluster, session = make_health_session(max_epochs=40)

    def client(h):
        yield h.rpc("health.activate", {})
        yield cluster.sim.timeout(0.5)
        yield h.rpc("health.deactivate", {})
        n_before = (yield h.rpc("health.view", {}))["n_views"]
        yield cluster.sim.timeout(0.7)
        n_after = (yield h.rpc("health.view", {}))["n_views"]
        return n_before, n_after

    n_before, n_after = run_proc(
        cluster, client(session.connect(0, collective=False)))
    assert n_before > 0
    # At most one already-in-flight epoch may land after deactivation.
    assert n_after <= n_before + 1


def test_local_sample_rpc():
    cluster, session = make_health_session()

    def client(h):
        yield h.rpc("health.activate", {})
        yield cluster.sim.timeout(0.3)
        return (yield h.rpc("health.local", {}))

    sample = run_proc(cluster, client(session.connect(5, collective=False)))
    assert sample["state"] in HEALTH_STATES
    for key in ("inbox_depth", "inbox_peak", "pending_rpcs",
                "retry_amp", "dirty_ops", "flight_dropped"):
        assert key in sample


def test_reduction_survives_broker_death():
    """A dead subtree must not wedge the reduction: live.down shrinks
    ``_expected`` and pending epochs re-complete."""
    n = 8
    cluster = make_cluster(n, seed=3)
    session = standard_session(cluster, with_heartbeat=True,
                               hb_period=0.05, hb_max_epochs=60)
    session.start()
    sim = cluster.sim

    def client(h):
        yield h.rpc("health.activate", {})

    run_proc(cluster, client(session.connect(0, collective=False)))
    sim.run(until=0.5)
    session.fail_rank(7)            # a leaf dies mid-run
    sim.run(until=3.0)
    root = session.brokers[0].modules["health"]
    assert root.views, "no completed views at the root"
    assert root.views[-1]["brokers"] == n - 1
    session.stop()


# ----------------------------------------------------------------------
# stats-document integration (``python -m repro.stats validate``)
# ----------------------------------------------------------------------
def test_chaos_stats_doc_health_section_validates(tmp_path):
    path = str(tmp_path / "stats.json")
    report = run_chaos_workload(n_nodes=7, n_clients=4, drop_rate=0.0,
                                n_iters=1, stats_out=path)
    assert report.converged
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    assert "health" in doc
    assert validate_stats(doc) == []


def _health_doc(view):
    return {"meta": {}, "aggregate": {"labels": {}, "metrics": []},
            "health": {"cluster": view, "views": [view]}}


def test_validate_stats_flags_bad_health_state():
    view = {"epoch": 1, "t": 0.5, "state": "on-fire", "brokers": 2,
            "counts": {"ok": 2}, "inbox_sum": 0, "inbox_max": 0,
            "pending_max": 0, "retry_amp_max": 0.0, "dirty_sum": 0,
            "respawn_sum": 0}
    problems = validate_stats(_health_doc(view))
    assert any("on-fire" in p for p in problems)


def test_validate_stats_flags_count_mismatch():
    view = {"epoch": 1, "t": 0.5, "state": "ok", "brokers": 5,
            "counts": {"ok": 2}, "inbox_sum": 0, "inbox_max": 0,
            "pending_max": 0, "retry_amp_max": 0.0, "dirty_sum": 0,
            "respawn_sum": 0}
    problems = validate_stats(_health_doc(view))
    assert any("counts sum 2 != brokers 5" in p for p in problems)


def test_validate_stats_flags_nonmonotonic_epochs():
    view = {"epoch": 3, "t": 0.5, "state": "ok", "brokers": 1,
            "counts": {"ok": 1}, "inbox_sum": 0, "inbox_max": 0,
            "pending_max": 0, "retry_amp_max": 0.0, "dirty_sum": 0,
            "respawn_sum": 0}
    doc = _health_doc(view)
    doc["health"]["views"] = [view, dict(view)]   # 3 then 3 again
    problems = validate_stats(doc)
    assert any("not increasing" in p for p in problems)


def test_validate_stats_accepts_placeholder_view():
    """A never-activated plane exports the epoch=-1 placeholder."""
    doc = _health_doc({"state": "unknown", "epoch": -1,
                       "cluster_state": "unknown"})
    doc["health"]["views"] = []
    assert validate_stats(doc) == []
