"""Property-based invariants of the Flux instance under random
workloads: conservation of cores, eventual completion, accounting
consistency — whatever mix of rigid/moldable/malleable jobs, policies
and elasticity events hypothesis throws at it."""

from hypothesis import given, settings, strategies as st

from repro.core import FluxInstance, JobSpec, JobState
from repro.resource import ResourcePool, build_cluster_graph
from repro.sched import EasyBackfillPolicy, FcfsPolicy, SjfPolicy
from repro.sim import Simulation

TOTAL_CORES = 32


@st.composite
def job_spec(draw):
    shape = draw(st.sampled_from(["rigid", "moldable", "malleable"]))
    ncores = draw(st.integers(1, 16))
    duration = draw(st.floats(0.1, 5.0))
    kwargs = dict(ncores=ncores, duration=duration,
                  serial_fraction=draw(st.floats(0.0, 0.5)))
    if shape != "rigid":
        kwargs["min_cores"] = draw(st.integers(1, ncores))
        kwargs["max_cores"] = draw(st.integers(ncores, 32))
        kwargs["malleable"] = shape == "malleable"
    return JobSpec(**kwargs)


@st.composite
def workload(draw):
    specs = draw(st.lists(job_spec(), min_size=1, max_size=12))
    arrivals = [draw(st.floats(0.0, 10.0)) for _ in specs]
    return sorted(zip(arrivals, specs), key=lambda x: x[0])


POLICIES = (FcfsPolicy, SjfPolicy, EasyBackfillPolicy)


class TestInstanceInvariants:
    @given(wl=workload(), policy_i=st.integers(0, 2))
    @settings(max_examples=60, deadline=None)
    def test_all_jobs_finish_and_cores_conserved(self, wl, policy_i):
        sim = Simulation(seed=0)
        graph = build_cluster_graph("inv", 1, TOTAL_CORES // 16)
        inst = FluxInstance(sim, ResourcePool(graph),
                            policy=POLICIES[policy_i]())

        def arrivals():
            last = 0.0
            for at, spec in wl:
                if at > last:
                    yield sim.timeout(at - last)
                    last = at
                inst.submit(spec)

        sim.spawn(arrivals())

        # Sample the oversubscription invariant while running.
        def monitor():
            for _ in range(50):
                yield sim.timeout(0.3)
                used = sum(j.allocation.ncores
                           for j in inst.running_jobs()
                           if j.allocation is not None)
                assert used <= TOTAL_CORES, "cores oversubscribed"
                assert used == TOTAL_CORES - inst.pool.total_free_cores()

        sim.spawn(monitor())
        sim.run()

        # Everything terminal, everything released.
        assert all(j.state is JobState.COMPLETE
                   for j in inst.jobs.values()), [
            (j.spec.name, j.state) for j in inst.jobs.values()]
        assert inst.pool.total_free_cores() == TOTAL_CORES
        assert inst._busy_cores == 0

    @given(wl=workload())
    @settings(max_examples=30, deadline=None)
    def test_work_conservation_with_malleability(self, wl):
        """Busy-core integral stays within the physical envelope and
        covers at least each job's best-case work."""
        sim = Simulation(seed=0)
        graph = build_cluster_graph("inv", 1, TOTAL_CORES // 16)
        inst = FluxInstance(sim, ResourcePool(graph))
        for _at, spec in wl:
            inst.submit(spec)
        sim.run()
        inst._integrate()
        horizon = sim.now
        assert inst._busy_area <= TOTAL_CORES * horizon * (1 + 1e-9)
        # Core-seconds at size n are d*(s*n + (1-s)*ncores): the serial
        # part charges however many cores are held, so the minimum is
        # attained running at min_cores the whole time.  That per-job
        # minimum is a true lower bound on the busy integral.
        floor = sum(
            spec.duration * (spec.serial_fraction
                             * (spec.min_cores or spec.ncores)
                             + (1 - spec.serial_fraction) * spec.ncores)
            for _a, spec in wl)
        assert inst._busy_area >= floor * (1 - 1e-6)

    @given(wl=workload(), seed=st.integers(0, 3))
    @settings(max_examples=20, deadline=None)
    def test_runs_are_deterministic(self, wl, seed):
        def run_once():
            sim = Simulation(seed=seed)
            graph = build_cluster_graph("inv", 1, TOTAL_CORES // 16)
            inst = FluxInstance(sim, ResourcePool(graph),
                                policy=EasyBackfillPolicy())
            for _at, spec in wl:
                # Re-create specs: JobSpec is mutable, shared state
                # between runs would lie.
                inst.submit(JobSpec(
                    ncores=spec.ncores, duration=spec.duration,
                    min_cores=spec.min_cores, max_cores=spec.max_cores,
                    malleable=spec.malleable,
                    serial_fraction=spec.serial_fraction))
            sim.run()
            return (sim.now,
                    tuple(sorted((j.spec.ncores, j.start_time, j.end_time)
                                 for j in inst.jobs.values())))

        assert run_once() == run_once()
