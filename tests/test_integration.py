"""End-to-end integration tests: full sessions under combined load,
failure injection, and whole-run determinism."""

import pytest

from repro import ModuleSpec, make_cluster, standard_session
from repro.cmb.session import CommsSession
from repro.cmb.topology import TreeTopology, flat_topology
from repro.kap import KapConfig, run_kap
from repro.kvs import KvsClient, KvsModule
from repro.cmb.modules import BarrierModule


class TestFullStack:
    def test_kvs_under_all_modules(self):
        """The standard session (all Table I modules) sustains a mixed
        put/fence/get workload with heartbeats running."""
        cluster = make_cluster(8, seed=21)
        session = standard_session(cluster, with_heartbeat=True,
                                   hb_max_epochs=10, hb_period=0.01).start()
        sim = cluster.sim
        N = 16

        def worker(i):
            kvs = KvsClient(session.connect(i % 8))
            yield kvs.put(f"mix.k{i}", "v" * 64)
            yield kvs.fence("mix", N)
            value = yield kvs.get(f"mix.k{(i + 1) % N}")
            assert value == "v" * 64
            return i

        procs = [sim.spawn(worker(i)) for i in range(N)]
        sim.run()
        assert sorted(p.value for p in procs) == list(range(N))

    def test_wexec_tasks_use_kvs_and_barrier(self):
        """Launched tasks bootstrap through PMI-style KVS exchange."""
        def mpi_like(ctx):
            handle = ctx.connect()
            kvs = KvsClient(handle)
            yield kvs.put(f"boot.{ctx.jobid}.{ctx.taskrank}",
                          ctx.taskrank * 2)
            yield kvs.fence(f"boot.{ctx.jobid}", ctx.nprocs)
            peer = (ctx.taskrank + 1) % ctx.nprocs
            value = yield kvs.get(f"boot.{ctx.jobid}.{peer}")
            ctx.print(f"peer value {value}")

        cluster = make_cluster(4, seed=22)
        session = standard_session(
            cluster, task_registry={"mpi": mpi_like}).start()
        sim = cluster.sim

        def driver():
            h = session.connect(0, collective=False)
            done = h.wait_event("wexec.done")
            yield h.rpc("wexec.run",
                        {"jobid": "boot1", "task": "mpi", "nprocs": 8})
            msg = yield done
            return msg.payload["status"]

        proc = sim.spawn(driver())
        assert sim.run_until_complete(proc) == 0
        out = session.module_at(1, "wexec").output[("boot1", 1)]
        assert out == ["peer value 4"]

    def test_failure_mid_workload_recovers(self):
        """Kill an interior broker while clients are active; after the
        live module heals the overlay, new RPCs succeed."""
        cluster = make_cluster(15, seed=23)
        session = standard_session(cluster, with_heartbeat=True,
                                   hb_period=0.05, hb_max_epochs=200).start()
        sim = cluster.sim

        def phase1():
            kvs = KvsClient(session.connect(14, collective=False))
            yield kvs.put("pre.fail", 1)
            yield kvs.commit()

        p1 = sim.spawn(phase1())
        sim.run(until=0.2)
        assert p1.ok
        session.fail_rank(1)
        sim.run(until=1.5)  # detection + heal

        def phase2():
            kvs = KvsClient(session.connect(3, collective=False))
            yield kvs.put("post.fail", 2)
            yield kvs.commit()
            v1 = yield kvs.get("pre.fail")
            v2 = yield kvs.get("post.fail")
            return v1, v2

        p2 = sim.spawn(phase2())
        sim.run(until=3.0)
        assert p2.ok and p2.value == (1, 2)


class TestTopologyVariants:
    @pytest.mark.parametrize("arity", [1, 2, 4, 7])
    def test_kvs_works_on_any_tree_shape(self, arity):
        cluster = make_cluster(8, seed=24)
        session = CommsSession(
            cluster, topology=TreeTopology(8, arity=arity),
            modules=[ModuleSpec(KvsModule),
                     ModuleSpec(BarrierModule)]).start()
        sim = cluster.sim
        N = 8

        def worker(i):
            kvs = KvsClient(session.connect(i))
            yield kvs.put(f"t.k{i}", i)
            yield kvs.fence("t", N)
            return (yield kvs.get(f"t.k{(i + 3) % N}"))

        procs = [sim.spawn(worker(i)) for i in range(N)]
        sim.run()
        assert [p.value for p in procs] == [(i + 3) % N for i in range(N)]

    def test_flat_topology_matches_tree_results(self):
        """Same workload, different overlays: identical KVS contents."""
        def final_root(topology_factory):
            cluster = make_cluster(8, seed=25)
            session = CommsSession(
                cluster, topology=topology_factory(8),
                modules=[ModuleSpec(KvsModule),
                         ModuleSpec(BarrierModule)]).start()
            sim = cluster.sim

            def worker(i):
                kvs = KvsClient(session.connect(i))
                yield kvs.put(f"same.k{i}", i * i)
                yield kvs.fence("f", 8)

            procs = [sim.spawn(worker(i)) for i in range(8)]
            sim.run()
            assert all(p.ok for p in procs)
            return session.module_at(0, "kvs").master.root_sha

        tree_root = final_root(lambda n: TreeTopology(n, arity=2))
        flat_root = final_root(flat_topology)
        assert tree_root == flat_root  # content-addressed: same state


class TestDeterminism:
    def test_identical_seeds_identical_traces(self):
        def fingerprint(seed):
            res = run_kap(KapConfig(nnodes=8, procs_per_node=2,
                                    value_size=64, naccess=2, seed=seed))
            return (res.events, res.bytes_sent, res.total_time,
                    res.max_sync_latency)

        assert fingerprint(3) == fingerprint(3)

    def test_simulated_time_independent_of_wall_clock(self):
        """Run the same config twice with different real-time gaps; the
        simulated results must be bit-identical."""
        import time
        r1 = run_kap(KapConfig(nnodes=4, procs_per_node=2, seed=1))
        time.sleep(0.01)
        r2 = run_kap(KapConfig(nnodes=4, procs_per_node=2, seed=1))
        assert r1.total_time == r2.total_time
        assert r1.producer.values.tolist() == r2.producer.values.tolist()
