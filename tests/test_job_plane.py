"""Job-plane fault tolerance (PR 7 acceptance).

Chaos acceptance on a 31-broker session under 1% message loss: kill an
interior broker — and, separately, rank 0 — mid-job, and the bulk
launch still converges with every taskrank's rc counted exactly once
and its stdout durable in the KVS, sanitizer-clean.  Plus the
guardrails and races around them: retry-budget exhaustion fails fast
instead of hanging, signals arriving before ``wexec.start`` are
buffered, late task finishes keep their accounting, duplicate
submissions under client retry are absorbed, over-limit submissions
shed load with a retryable ``EAGAIN``, and the walltime watchdog
escalates SIGTERM → SIGKILL into the TIMEOUT state.
"""

import pytest

from repro import make_cluster, standard_session
from repro.cmb.api import RpcError
from repro.cmb.errors import EAGAIN, EEXIST, ENOENT
from repro.cmb.modules.wexec import TaskContext
from repro.core import CommsConfig, FluxInstance, JobClient, JobSpec
from repro.kvs import KvsClient
from repro.resource import ResourcePool, build_cluster_graph
from repro.sim import FaultPlan

from .chaos import run_job_chaos_workload


# ----------------------------------------------------------------------
# chaos acceptance: broker kills mid-job under 1% loss
# ----------------------------------------------------------------------
class TestJobChaosAcceptance:
    def test_interior_broker_kill_converges(self):
        """Kill an interior broker mid-job: its running tasks are
        respawned on survivors and the tally closes exactly once."""
        rep = run_job_chaos_workload(
            n_nodes=31, nprocs=24, drop_rate=0.01, kill_ranks=(3,),
            kill_at=0.3, task_work=1.0, run_until=60.0, sanitize=True)
        assert rep.converged, rep.errors
        assert rep.completed and rep.status == "ok"
        assert rep.exactly_once
        assert rep.rcs_got == rep.rcs_expected == 24
        assert rep.stdout_failed == 0 and rep.stdout_verified == 24
        assert rep.respawns >= 1          # the victim hosted tasks
        assert rep.hung_waiters == 0
        assert rep.sanitizer_findings == []

    def test_root_kill_converges(self):
        """Kill rank 0 mid-job: the acting root takes over the
        completion reduction and respawn duty; KVS replicas keep the
        stdout commits durable."""
        rep = run_job_chaos_workload(
            n_nodes=31, nprocs=24, drop_rate=0.01, kill_ranks=(0,),
            kill_at=0.3, task_work=1.0, run_until=60.0, sanitize=True,
            kvs_replicas=(1, 2))
        assert rep.converged, rep.errors
        assert rep.completed and rep.exactly_once
        assert rep.stdout_failed == 0 and rep.stdout_verified == 24
        assert rep.sanitizer_findings == []

    def test_retry_budget_exhaustion_fails_not_hangs(self):
        """A task whose respawn budget runs out drives the job to a
        ``wexec.lost`` failure instead of an unclosable tally."""
        rep = run_job_chaos_workload(
            n_nodes=15, nprocs=8, drop_rate=0.01, kill_ranks=(3,),
            kill_at=0.3, task_work=1.0, run_until=30.0, max_restarts=0)
        assert rep.lost and not rep.completed
        assert rep.status == "lost"
        assert rep.hung_waiters == 0


# ----------------------------------------------------------------------
# wexec races and definitive answers
# ----------------------------------------------------------------------
def _session(n=7, registry=None, **kw):
    cluster = make_cluster(n, seed=71)
    session = standard_session(cluster, task_registry=registry or {},
                               **kw).start()
    return cluster, session


class TestWexecRaces:
    def test_signal_before_start_is_buffered(self):
        """The event plane may deliver a signal published right after
        the launch to a broker that has not yet processed
        ``wexec.start``: it is buffered and applied at start."""

        def sleeper(ctx):
            yield ctx.sim.timeout(5.0)

        cluster, session = _session(registry={"sleeper": sleeper})
        sim = cluster.sim
        done = []
        root = session.brokers[0]
        root.subscribe("wexec.done", lambda m: done.append(m.payload))
        # Raw event publication inverts the order on purpose: every
        # broker sees the signal before the job exists locally.
        root.publish("wexec.signal", {"jobid": "lwjX", "signum": 15})
        root.publish("wexec.start",
                     {"jobid": "lwjX", "task": "sleeper", "nprocs": 4,
                      "ranks": list(range(7)), "args": {}})
        sim.run(until=2.0)
        assert done and done[0]["jobid"] == "lwjX"
        # Every task died to the buffered SIGTERM: rc = 128 + 15.
        assert set(done[0]["rcs"].values()) == {143}
        session.stop()

    def test_signal_unknown_job_is_definitive(self):
        cluster, session = _session()
        sim = cluster.sim

        def client():
            handle = session.connect(5, collective=False)
            with pytest.raises(RpcError) as ei:
                yield handle.rpc("wexec.signal",
                                 {"jobid": "lwj-none", "signum": 9})
            assert ei.value.code == ENOENT
            return "ok"

        proc = sim.spawn(client())
        assert sim.run_until_complete(proc) == "ok"
        session.stop()

    def test_duplicate_jobid_rejected(self):
        def quick(ctx):
            yield ctx.sim.timeout(1.0)

        cluster, session = _session(registry={"quick": quick})
        sim = cluster.sim

        def client():
            handle = session.connect(2, collective=False)
            yield handle.rpc("wexec.run", {"jobid": "lwjD",
                                           "task": "quick", "nprocs": 2})
            with pytest.raises(RpcError) as ei:
                yield handle.rpc("wexec.run", {"jobid": "lwjD",
                                               "task": "quick",
                                               "nprocs": 2})
            assert ei.value.code == EEXIST
            return "ok"

        proc = sim.spawn(client())
        assert sim.run_until_complete(proc) == "ok"
        session.stop()

    def test_late_task_finish_keeps_accounting(self):
        """A task finishing after its job record was retired (the
        ``_task_finished``-after-``_on_done`` race) must not lose its
        rc/stdout — they land in the late-finish ledger instead."""
        cluster, session = _session()
        wexec = session.brokers[3].modules["wexec"]
        ctx = TaskContext(wexec, "lwj-late", 1, 2, {})
        ctx.print("late line")
        wexec._task_finished(ctx, 7)        # no _JobState exists
        assert wexec.late_rcs[("lwj-late", 1)] == 7
        assert wexec.output[("lwj-late", 1)] == ["late line"]
        session.stop()


# ----------------------------------------------------------------------
# admission control + idempotent submission
# ----------------------------------------------------------------------
def make_instance(n_nodes=8, *, cores=4, seed=91, **inst_kw):
    cluster = make_cluster(n_nodes, seed=seed)
    graph = build_cluster_graph("jp", 1, n_nodes, sockets=1,
                                cores_per_socket=cores)
    comms = CommsConfig(cluster, task_registry={})
    inst = FluxInstance(cluster.sim, ResourcePool(graph), comms=comms,
                        **inst_kw)
    return cluster, inst


class TestAdmissionControl:
    def test_overload_sheds_with_retryable_eagain(self):
        cluster, inst = make_instance(max_pending=2)
        sim = cluster.sim
        # Fill the machine, then the pending queue to its bound.
        inst.submit(JobSpec(ncores=32, duration=0.3, name="blocker"))
        sim.run(until=0.01)     # blocker leaves pending, starts running
        inst.submit(JobSpec(ncores=32, duration=0.01))
        inst.submit(JobSpec(ncores=32, duration=0.01))
        with pytest.raises(RuntimeError, match="pending queue full"):
            inst.submit(JobSpec(ncores=1, duration=0.01))

        def client():
            handle = inst.session.connect(5, collective=False)
            jc = JobClient(handle)
            with pytest.raises(RpcError) as ei:
                yield jc.submit({"ncores": 1, "duration": 0.01})
            assert ei.value.code == EAGAIN
            assert ei.value.retryable
            # The standard retry machinery rides out the backlog: once
            # the blocker finishes and the queue drains, a retried
            # submission is admitted.
            resp = yield handle.rpc("job.submit",
                                    {"ncores": 1, "duration": 0.01,
                                     "name": "retried"},
                                    timeout=0.2, retries=10)
            return (yield jc.wait(resp["jobid"]))

        proc = sim.spawn(client())
        assert sim.run_until_complete(proc) == "complete"
        assert inst.session.brokers[0].modules["job"].rejected >= 2

    def test_submit_idempotent_under_chaos(self):
        """Client retries with duplication and loss on the fabric must
        not double-enqueue: every re-attempt reuses the msgid, so the
        broker replay cache absorbs duplicates of a successful
        submission."""
        cluster, inst = make_instance(seed=93)
        sim = cluster.sim
        # Total blackout, healing into a *duplicating* fabric: the
        # first attempt is certainly lost, so the client re-issues the
        # identical request (same msgid) — and after the heal both the
        # broker-level retransmission of attempt 1 and attempt 2 (plus
        # dup-injected copies) can reach the root.
        cluster.network.fault_plan = FaultPlan(seed=17, drop_rate=1.0)
        heal = sim.timeout(0.08)
        heal.add_callback(
            lambda _e: setattr(cluster.network, "fault_plan",
                               FaultPlan(seed=19, dup_rate=0.5)))
        acked = []

        def client():
            handle = inst.session.connect(6, collective=False)
            resp = yield handle.rpc("job.submit",
                                    {"ncores": 4, "duration": 0.01,
                                     "name": "once"},
                                    timeout=0.05, retries=16)
            acked.append((resp["jobid"], handle.retries))

        proc = sim.spawn(client())
        sim.run(until=10.0)
        assert proc.triggered and proc.ok
        # Clean fabric to drain the job itself.
        cluster.network.fault_plan = None
        sim.run()
        jobid, retries = acked[0]
        assert retries >= 1               # the client actually retried
        named = [j for j in inst.jobs.values() if j.spec.name == "once"]
        assert len(named) == 1            # no double-enqueue
        assert named[0].jobid == jobid
        assert named[0].state.value == "complete"


# ----------------------------------------------------------------------
# walltime watchdog
# ----------------------------------------------------------------------
class TestWalltimeWatchdog:
    def test_duration_job_times_out(self):
        cluster, inst = make_instance(enforce_walltime=True)
        job = inst.submit(JobSpec(ncores=4, duration=1.0, walltime=0.1))
        cluster.sim.run()
        assert job.state.value == "timeout"
        assert "walltime" in job.error

    def test_rigid_job_within_walltime_unaffected(self):
        cluster, inst = make_instance(enforce_walltime=True)
        job = inst.submit(JobSpec(ncores=4, duration=0.05))
        cluster.sim.run()
        assert job.state.value == "complete"
        assert job.error is None

    def test_task_job_killed_by_walltime(self):
        def stuck(ctx):
            ctx.print("started")
            yield ctx.sim.timeout(30.0)

        cluster = make_cluster(4, seed=95)
        graph = build_cluster_graph("wt", 1, 4, sockets=1,
                                    cores_per_socket=4)
        comms = CommsConfig(cluster, task_registry={"stuck": stuck})
        inst = FluxInstance(cluster.sim, ResourcePool(graph),
                            comms=comms, enforce_walltime=True,
                            term_grace=0.02)
        done = []
        inst.session.brokers[0].subscribe(
            "wexec.done", lambda m: done.append(m.payload))
        job = inst.submit(JobSpec(ncores=4, task="stuck", ntasks=2,
                                  walltime=0.1))
        cluster.sim.run(until=3.0)
        assert job.state.value == "timeout"
        assert "walltime" in job.error
        # Tasks saw the SIGTERM/SIGKILL ladder: rc = 128 + sig.
        assert done and set(done[0]["rcs"].values()) <= {143, 137}

    def test_stubborn_body_escalates_to_kill(self):
        """A body that swallows SIGTERM is eventually torn down by the
        escalation ladder and the job still lands in TIMEOUT."""
        from repro.sim.kernel import Interrupt

        def stubborn(job, inst):
            while True:
                try:
                    yield inst.sim.timeout(10.0)
                    return
                except Interrupt:
                    continue            # ignore the polite request

        cluster, inst = make_instance(enforce_walltime=True)
        inst.term_grace = 0.02
        job = inst.submit(JobSpec(ncores=4, body=stubborn,
                                  walltime=0.05))
        cluster.sim.run(until=2.0)
        assert job.state.value == "timeout"
        assert "walltime" in job.error

    def test_timeout_recorded_in_kvs_journal(self):
        cluster, inst = make_instance(enforce_walltime=True)
        job = inst.submit(JobSpec(ncores=4, duration=1.0, walltime=0.1))
        cluster.sim.run()

        def reader():
            kvs = KvsClient(inst.session.connect(3, collective=False))
            return (yield kvs.get(f"lwj.{job.jobid}.state"))

        proc = cluster.sim.spawn(reader())
        rec = cluster.sim.run_until_complete(proc)
        assert rec["state"] == "timeout"
        assert "walltime" in rec["error"]


# ----------------------------------------------------------------------
# durable job state: KVS journal + acting-root job manager
# ----------------------------------------------------------------------
class TestJobManagerFailover:
    def _failover_instance(self):
        cluster = make_cluster(8, seed=97)
        graph = build_cluster_graph("fo", 1, 8, sockets=1,
                                    cores_per_socket=4)
        comms = CommsConfig(cluster, with_heartbeat=True, hb_period=0.05,
                            hb_max_epochs=400, kvs_replicas=(1, 2))
        inst = FluxInstance(cluster.sim, ResourcePool(graph),
                            comms=comms)
        # A (zero-loss) fault plan arms the pulse-starvation watchdog:
        # the static root is both tree root and heartbeat generator, so
        # its death stops all pulses and only the orphan-side watchdog
        # can notice (fault-free runs keep it off by design).
        cluster.network.fault_plan = FaultPlan(seed=1, drop_rate=0.0)
        return cluster, inst

    def test_spec_journalled_once(self):
        cluster, inst = make_instance()
        job = inst.submit(JobSpec(ncores=4, duration=0.01, name="spec"))
        cluster.sim.run()

        def reader():
            kvs = KvsClient(inst.session.connect(2, collective=False))
            return (yield kvs.get(f"lwj.{job.jobid}.spec"))

        proc = cluster.sim.spawn(reader())
        spec = cluster.sim.run_until_complete(proc)
        assert spec["ncores"] == 4 and spec["name"] == "spec"
        assert spec["duration"] == 0.01

    def test_acting_root_serves_jobs_after_rank0_death(self):
        """Kill rank 0 mid-job: the acting root's job module promotes
        its standby hook and keeps the whole submission path alive —
        the in-flight job finishes, queries answer from the recovered
        journal, and *new* submissions still run."""
        cluster, inst = self._failover_instance()
        sim = cluster.sim
        results = {}

        def client():
            handle = inst.session.connect(5, collective=False)
            jc = JobClient(handle)
            r1 = yield handle.rpc("job.submit",
                                  {"ncores": 4, "duration": 0.5,
                                   "name": "survivor"},
                                  timeout=0.5, retries=8)
            results["first"] = yield jc.wait(r1["jobid"])
            info = yield handle.rpc("job.info", {"jobid": r1["jobid"]},
                                    timeout=0.5, retries=8)
            results["info"] = info
            r2 = yield handle.rpc("job.submit",
                                  {"ncores": 4, "duration": 0.05,
                                   "name": "after"},
                                  timeout=0.5, retries=8)
            results["second"] = yield jc.wait(r2["jobid"])
            listing = yield handle.rpc("job.list", {}, timeout=0.5,
                                       retries=8)
            results["names"] = {j["name"] for j in listing["jobs"]}

        proc = sim.spawn(client())
        kill = sim.timeout(0.2)
        kill.add_callback(lambda _e: inst.session.fail_rank(0))
        sim.run(until=30.0)
        assert proc.triggered and proc.ok, results
        assert results["first"] == "complete"
        assert results["second"] == "complete"
        assert results["info"]["state"] == "complete"
        assert results["info"]["name"] == "survivor"
        assert {"survivor", "after"} <= results["names"]
        # The promotion actually happened (and exactly once).
        takeovers = sum(b.modules["job"].takeovers
                        for b in inst.session.brokers if b.alive)
        assert takeovers == 1

    def test_records_recovered_from_kvs_journal(self):
        """Jobs that finished *before* the root died are still
        answerable afterwards — reconstructed from ``lwj.*`` by the
        acting root's recovery pass (or its event mirror)."""
        cluster, inst = self._failover_instance()
        sim = cluster.sim
        done = inst.submit(JobSpec(ncores=4, duration=0.05,
                                   name="historic"))
        sim.run(until=0.3)
        assert done.state.value == "complete"
        inst.session.fail_rank(0)
        sim.run(until=2.0)      # takeover + recovery pass
        results = {}

        def client():
            handle = inst.session.connect(6, collective=False)
            info = yield handle.rpc("job.info", {"jobid": done.jobid},
                                    timeout=0.5, retries=8)
            results["info"] = info

        proc = sim.spawn(client())
        sim.run(until=10.0)
        assert proc.triggered and proc.ok
        assert results["info"]["state"] == "complete"
        assert results["info"]["name"] == "historic"
