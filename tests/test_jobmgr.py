"""Tests for in-band job submission (the ``job`` comms module and
JobClient — the flux-submit path of the unified job model)."""

import pytest

from repro.cmb.api import RpcError
from repro.core import CommsConfig, FluxInstance, JobClient, JobSpec
from repro.resource import ResourcePool, build_cluster_graph
from repro.sim.cluster import make_cluster


def quick_task(ctx):
    ctx.print("ran")
    yield ctx.sim.timeout(1e-3)


def make_instance(n_nodes=8):
    cluster = make_cluster(n_nodes, seed=81)
    graph = build_cluster_graph("jm", 1, n_nodes, sockets=2,
                                cores_per_socket=8)
    comms = CommsConfig(cluster, task_registry={"quick": quick_task})
    inst = FluxInstance(cluster.sim, ResourcePool(graph), comms=comms)
    return cluster, inst


def run(cluster, gen):
    proc = cluster.sim.spawn(gen)
    return cluster.sim.run_until_complete(proc)


class TestSubmitOverWire:
    def test_submit_from_leaf_node(self):
        cluster, inst = make_instance()

        def client():
            jc = JobClient(inst.session.connect(7, collective=False))
            resp = yield jc.submit({"ncores": 8, "duration": 0.01,
                                    "name": "wired"})
            state = yield jc.wait(resp["jobid"])
            return resp["jobid"], state

        jobid, state = run(cluster, client())
        assert state == "complete"
        assert inst.jobs[jobid].spec.name == "wired"

    def test_submit_and_wait_helper(self):
        cluster, inst = make_instance()

        def client():
            jc = JobClient(inst.session.connect(3, collective=False))
            state = yield from jc.submit_and_wait(
                {"ncores": 4, "duration": 0.02})
            return state

        assert run(cluster, client()) == "complete"

    def test_task_job_over_wire(self):
        cluster, inst = make_instance()

        def client():
            jc = JobClient(inst.session.connect(5, collective=False))
            resp = yield jc.submit({"ncores": 8, "task": "quick",
                                    "ntasks": 2})
            return (yield jc.wait(resp["jobid"]))

        assert run(cluster, client()) == "complete"

    def test_failed_job_reported(self):
        cluster, inst = make_instance()

        def client():
            jc = JobClient(inst.session.connect(2, collective=False))
            resp = yield jc.submit({"ncores": 4, "task": "nosuch",
                                    "ntasks": 1})
            state = yield jc.wait(resp["jobid"])
            info = yield jc.info(resp["jobid"])
            return state, info["error"]

        state, error = run(cluster, client())
        assert state == "failed"
        assert "nosuch" in error or "status" in error

    def test_invalid_spec_rejected(self):
        cluster, inst = make_instance()

        def client():
            jc = JobClient(inst.session.connect(1, collective=False))
            # Missing ncores now fails the declared-field validation at
            # the protocol boundary (structured EINVAL).
            with pytest.raises(RpcError,
                               match="missing required payload field"):
                yield jc.submit({"duration": 1.0})
            with pytest.raises(RpcError, match="rejected"):
                yield jc.submit({"ncores": 0})
            return "ok"

        assert run(cluster, client()) == "ok"

    def test_callable_fields_not_accepted_over_wire(self):
        cluster, inst = make_instance()

        def client():
            jc = JobClient(inst.session.connect(1, collective=False))
            # "body"/"subjobs" are not in the whitelist: silently
            # ignored, so this is just a duration job.
            resp = yield jc.submit({"ncores": 2, "duration": 0.01,
                                    "body": "evil", "subjobs": [1]})
            return (yield jc.wait(resp["jobid"]))

        assert run(cluster, client()) == "complete"

    def test_info_and_list(self):
        cluster, inst = make_instance()

        def client():
            jc = JobClient(inst.session.connect(6, collective=False))
            r1 = yield jc.submit({"ncores": 4, "duration": 0.01,
                                  "name": "a"})
            r2 = yield jc.submit({"ncores": 4, "duration": 0.01,
                                  "name": "b"})
            yield jc.wait(r1["jobid"])
            yield jc.wait(r2["jobid"])
            info = yield jc.info(r1["jobid"])
            listing = yield jc.list()
            return info, listing

        info, listing = run(cluster, client())
        assert info["state"] == "complete" and info["name"] == "a"
        assert {j["name"] for j in listing["jobs"]} == {"a", "b"}

    def test_info_unknown_job(self):
        cluster, inst = make_instance()

        def client():
            jc = JobClient(inst.session.connect(0, collective=False))
            with pytest.raises(RpcError, match="unknown job"):
                yield jc.info(999999)
            return "ok"

        assert run(cluster, client()) == "ok"

    def test_wait_after_completion_resolves(self):
        cluster, inst = make_instance()

        def client():
            jc = JobClient(inst.session.connect(4, collective=False))
            resp = yield jc.submit({"ncores": 2, "duration": 0.005})
            yield cluster.sim.timeout(0.1)  # job long done, no event kept
            jc2 = JobClient(inst.session.connect(4, collective=False))
            return (yield jc2.wait(resp["jobid"]))

        assert run(cluster, client()) == "complete"


class TestRecursiveSubmission:
    def test_task_submits_follow_up_work(self):
        """The unified model's recursion: a running task submits a new
        job to its own instance through the job manager."""
        cluster = make_cluster(8, seed=82)
        graph = build_cluster_graph("rec", 1, 8, sockets=2,
                                    cores_per_socket=8)

        def spawner_task(ctx):
            handle = ctx.connect()
            jc = JobClient(handle)
            state = yield from jc.submit_and_wait(
                {"ncores": 4, "duration": 0.01, "name": "spawned"})
            ctx.print(f"child finished: {state}")

        comms = CommsConfig(cluster,
                            task_registry={"spawner": spawner_task})
        inst = FluxInstance(cluster.sim, ResourcePool(graph), comms=comms)
        parent = inst.submit(JobSpec(ncores=8, task="spawner", ntasks=1))
        cluster.sim.run()
        assert parent.state.value == "complete"
        spawned = [j for j in inst.jobs.values()
                   if j.spec.name == "spawned"]
        assert len(spawned) == 1
        assert spawned[0].state.value == "complete"
