"""Tests for the KAP driver: configuration, patterns, phase semantics,
and the scaling shapes the paper's figures report."""

import pytest

from repro.kap import (KapConfig, consumer_targets, make_value, object_key,
                       predict_consumer_latency, predict_fence_latency,
                       predict_producer_latency, proc_rank_node, run_kap)
from repro.kap.results import format_series_table
from repro.sim.cluster import zin_like_params


class TestConfig:
    def test_defaults_fully_populated(self):
        cfg = KapConfig(nnodes=4, procs_per_node=4)
        assert cfg.nprocs == 16
        assert cfg.producers == 16 and cfg.consumers == 16
        assert cfg.total_objects == 16

    def test_role_counts(self):
        cfg = KapConfig(nnodes=4, procs_per_node=4, nproducers=5,
                        nconsumers=3)
        assert cfg.producers == 5 and cfg.consumers == 3
        assert cfg.total_objects == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            KapConfig(nnodes=0)
        with pytest.raises(ValueError):
            KapConfig(sync="nope")
        with pytest.raises(ValueError):
            KapConfig(dir_width=0)
        with pytest.raises(ValueError):
            KapConfig(value_size=0)


class TestPatterns:
    def test_single_dir_keys(self):
        assert object_key(5, None) == "kap.o5"

    def test_multi_dir_keys(self):
        assert object_key(5, 128) == "kap.d0.o5"
        assert object_key(130, 128) == "kap.d1.o130"
        assert object_key(256, 128) == "kap.d2.o256"

    def test_value_exact_size(self):
        for size in (1, 8, 100):
            assert len(make_value(3, size, False)) == size
            assert len(make_value(3, size, True)) == size

    def test_redundant_values_identical_across_gids(self):
        assert make_value(1, 64, True) == make_value(99, 64, True)

    def test_unique_values_differ(self):
        assert make_value(1, 64, False) != make_value(2, 64, False)

    def test_consumer_targets_stride(self):
        cfg = KapConfig(nnodes=2, procs_per_node=2, naccess=3, stride=2)
        # total objects = 4; consumer 1 reads (2, 3, 0)
        assert consumer_targets(cfg, 1) == [2, 3, 0]

    def test_stride_zero_everyone_reads_same(self):
        cfg = KapConfig(nnodes=2, procs_per_node=2, naccess=2, stride=0)
        assert consumer_targets(cfg, 0) == consumer_targets(cfg, 3)

    def test_cyclic_placement(self):
        cfg = KapConfig(nnodes=4, procs_per_node=2)
        assert [proc_rank_node(cfg, p) for p in range(8)] == \
            [0, 1, 2, 3, 0, 1, 2, 3]


class TestDriver:
    def test_small_run_produces_all_phases(self):
        cfg = KapConfig(nnodes=4, procs_per_node=2, value_size=16,
                        naccess=2)
        res = run_kap(cfg)
        assert len(res.producer) == 8
        assert len(res.sync) == 8
        assert len(res.consumer) == 8
        assert res.max_producer_latency > 0
        assert res.max_sync_latency > 0
        assert res.max_consumer_latency > 0
        assert res.total_time > res.setup_time > 0

    def test_producer_only_run(self):
        cfg = KapConfig(nnodes=2, procs_per_node=2, nconsumers=0,
                        naccess=0)
        res = run_kap(cfg)
        assert len(res.consumer) == 0
        assert len(res.producer) == 4

    def test_consumer_reads_correct_sizes(self):
        # run_kap asserts value sizes internally; a mismatch would fail.
        cfg = KapConfig(nnodes=2, procs_per_node=2, value_size=100,
                        naccess=4, stride=3)
        run_kap(cfg)

    def test_commit_wait_sync_mode(self):
        cfg = KapConfig(nnodes=4, procs_per_node=2, sync="commit_wait",
                        naccess=1)
        res = run_kap(cfg)
        assert len(res.sync) == 8
        assert res.max_consumer_latency > 0

    def test_deterministic_given_seed(self):
        cfg = KapConfig(nnodes=4, procs_per_node=2, naccess=2, seed=9)
        r1, r2 = run_kap(cfg), run_kap(cfg)
        assert r1.max_sync_latency == r2.max_sync_latency
        assert r1.max_consumer_latency == r2.max_consumer_latency
        assert r1.events == r2.events

    def test_event_budget_guard(self):
        cfg = KapConfig(nnodes=4, procs_per_node=2)
        with pytest.raises(Exception):
            run_kap(cfg, max_events=10)

    def test_multi_directory_layout_runs(self):
        cfg = KapConfig(nnodes=2, procs_per_node=2, nputs=8, dir_width=4,
                        naccess=4)
        res = run_kap(cfg)
        assert len(res.consumer) == 4


class TestScalingShapes:
    """The qualitative claims of Figures 2-4, at test-sized scale."""

    def test_fig2_producer_latency_flat(self):
        """kvs_put is write-back: latency independent of producer count."""
        lat = [run_kap(KapConfig(nnodes=n, procs_per_node=2, naccess=0,
                                 nconsumers=0)).max_producer_latency
               for n in (4, 16)]
        assert lat[1] < lat[0] * 2.0  # flat-ish, not linear (4x procs)

    def test_fig2_producer_latency_grows_with_value_size(self):
        small = run_kap(KapConfig(nnodes=4, procs_per_node=2, value_size=8,
                                  nconsumers=0, naccess=0))
        big = run_kap(KapConfig(nnodes=4, procs_per_node=2,
                                value_size=32768, nconsumers=0, naccess=0))
        assert big.max_producer_latency > small.max_producer_latency

    def test_fig3_unique_fence_scales_linearly(self):
        lat = [run_kap(KapConfig(nnodes=n, procs_per_node=2,
                                 value_size=2048, naccess=0,
                                 nconsumers=0)).max_sync_latency
               for n in (8, 32)]
        # 4x producers -> at least ~2x latency for unique values.
        assert lat[1] > lat[0] * 2.0

    def test_fig3_redundant_beats_unique(self):
        base = dict(nnodes=16, procs_per_node=2, value_size=2048,
                    naccess=0, nconsumers=0)
        unique = run_kap(KapConfig(**base)).max_sync_latency
        red = run_kap(KapConfig(**base,
                                redundant_values=True)).max_sync_latency
        assert red < unique

    def test_fig3_redundant_gap_widens_with_scale(self):
        def ratio(n):
            base = dict(nnodes=n, procs_per_node=2, value_size=2048,
                        naccess=0, nconsumers=0)
            u = run_kap(KapConfig(**base)).max_sync_latency
            r = run_kap(KapConfig(**base,
                                  redundant_values=True)).max_sync_latency
            return u / r

        assert ratio(32) > ratio(8)

    def test_fig4_consumer_latency_grows_with_scale(self):
        lat = [run_kap(KapConfig(nnodes=n, procs_per_node=2, value_size=8,
                                 naccess=2, nputs=8)).max_consumer_latency
               for n in (4, 16)]
        assert lat[1] > lat[0]

    def test_fig4_multi_directory_beats_single(self):
        base = dict(nnodes=16, procs_per_node=4, value_size=8, naccess=4,
                    nputs=16)
        single = run_kap(KapConfig(**base)).max_consumer_latency
        multi = run_kap(KapConfig(**base,
                                  dir_width=128)).max_consumer_latency
        assert multi < single

    def test_fig4_latency_grows_with_access_count(self):
        base = dict(nnodes=8, procs_per_node=2, value_size=8, nputs=4)
        a1 = run_kap(KapConfig(**base, naccess=1)).max_consumer_latency
        a8 = run_kap(KapConfig(**base, naccess=8)).max_consumer_latency
        assert a8 > a1


class TestModels:
    def test_producer_model_independent_of_scale(self):
        p = zin_like_params()
        small = predict_producer_latency(KapConfig(nnodes=4), p)
        big = predict_producer_latency(KapConfig(nnodes=512), p)
        assert small == big

    def test_fence_model_linear_in_producers(self):
        p = zin_like_params()
        l1 = predict_fence_latency(KapConfig(nnodes=64, value_size=2048), p)
        l2 = predict_fence_latency(KapConfig(nnodes=512, value_size=2048), p)
        assert l2 > 4 * l1

    def test_fence_model_redundant_cheaper(self):
        p = zin_like_params()
        u = predict_fence_latency(KapConfig(nnodes=64, value_size=2048), p)
        r = predict_fence_latency(
            KapConfig(nnodes=64, value_size=2048, redundant_values=True), p)
        assert r < u

    def test_consumer_model_multi_dir_cheaper(self):
        p = zin_like_params()
        s = predict_consumer_latency(
            KapConfig(nnodes=64, naccess=4, nputs=16), p)
        m = predict_consumer_latency(
            KapConfig(nnodes=64, naccess=4, nputs=16, dir_width=128), p)
        assert m < s

    def test_consumer_model_within_factor_of_simulation(self):
        """The paper's log2(C) x T(G) model should predict the simulated
        single-directory latency to within an order of magnitude."""
        cfg = KapConfig(nnodes=16, procs_per_node=4, value_size=8,
                        naccess=4, nputs=16)
        measured = run_kap(cfg).max_consumer_latency
        predicted = predict_consumer_latency(cfg, zin_like_params())
        assert predicted == pytest.approx(measured, rel=0.9)

    def test_geometric_series_doubling(self):
        """The paper: if G doubles when C doubles, latency ~doubles."""
        p = zin_like_params()
        lats = [predict_consumer_latency(
            KapConfig(nnodes=n, procs_per_node=16, naccess=1), p)
            for n in (64, 128, 256)]
        r1 = lats[1] / lats[0]
        r2 = lats[2] / lats[1]
        assert 1.5 < r1 < 2.5 and 1.5 < r2 < 2.5


class TestResultFormatting:
    def test_series_table_renders(self):
        table = format_series_table(
            "Figure X", "procs",
            {"vsize-8": {64: 1e-3, 128: 2e-3}, "vsize-32": {64: 1.5e-3}})
        assert "Figure X" in table
        assert "vsize-8" in table and "vsize-32" in table
        assert "1.000" in table  # 1e-3 s in ms
        assert table.count("\n") >= 4

    def test_missing_cells_dashed(self):
        table = format_series_table("T", "x", {"a": {1: 1e-3}, "b": {2: 1e-3}})
        assert "-" in table
