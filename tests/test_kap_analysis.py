"""Tests for the scaling-exponent analysis — including the headline
check: the measured KAP exponents match the paper's asymptotic claims."""

import pytest

from repro.kap.analysis import (classify_scaling, fit_power_law,
                                scaling_exponents)
from repro.kap.sweep import SweepSpec, run_sweep


class TestFit:
    def test_exact_linear(self):
        fit = fit_power_law([1, 2, 4, 8], [3, 6, 12, 24])
        assert fit.exponent == pytest.approx(1.0)
        assert fit.prefactor == pytest.approx(3.0)
        assert fit.r2 == pytest.approx(1.0)

    def test_exact_quadratic(self):
        fit = fit_power_law([1, 2, 4], [5, 20, 80])
        assert fit.exponent == pytest.approx(2.0)

    def test_flat_series(self):
        fit = fit_power_law([1, 10, 100], [7.0, 7.0, 7.0])
        assert fit.exponent == pytest.approx(0.0)

    def test_predict_roundtrip(self):
        fit = fit_power_law([1, 2, 4, 8], [2, 4, 8, 16])
        assert fit.predict(16) == pytest.approx(32.0)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            fit_power_law([1], [1])
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [0, 1])
        with pytest.raises(ValueError):
            fit_power_law([2, 2], [1, 3])

    def test_classify(self):
        assert classify_scaling(0.05) == "flat"
        assert classify_scaling(0.5) == "sublinear"
        assert classify_scaling(1.02) == "linear"


class TestMeasuredExponents:
    """The paper's Section V-B asymptotics as numbers, measured from a
    real (reduced-scale) sweep."""

    @pytest.fixture(scope="class")
    def sweep_rows(self):
        spec = SweepSpec(nodes=(8, 16, 32, 64), procs_per_node=(4,),
                         value_sizes=(2048,), redundant=(False, True),
                         naccess=(0,))
        return run_sweep(spec)

    def test_put_is_flat(self, sweep_rows):
        fits = scaling_exponents(
            sweep_rows, x_field="nprocs", y_field="max_put_s",
            group_by=lambda r: r["redundant"])
        for fit in fits.values():
            assert classify_scaling(fit.exponent) == "flat", fit

    def test_unique_fence_is_linear_ish(self, sweep_rows):
        fits = scaling_exponents(
            sweep_rows, x_field="nprocs", y_field="max_fence_s",
            group_by=lambda r: r["redundant"])
        unique = fits[0]
        assert unique.exponent > 0.6, unique
        assert unique.r2 > 0.98

    def test_redundant_fence_sublinear_but_not_flat(self, sweep_rows):
        fits = scaling_exponents(
            sweep_rows, x_field="nprocs", y_field="max_fence_s",
            group_by=lambda r: r["redundant"])
        red = fits[1]
        # "Fails short of logarithmic": still grows (not flat), but
        # clearly slower than the unique case.
        assert 0.05 < red.exponent < fits[0].exponent

    def test_consumer_linear_when_g_grows_with_c(self):
        spec = SweepSpec(nodes=(8, 16, 32, 64), procs_per_node=(4,),
                         value_sizes=(8,), naccess=(1,), nputs=(16,))
        rows = run_sweep(spec)
        fits = scaling_exponents(rows, x_field="nprocs",
                                 y_field="max_get_s")
        fit = fits["all"]
        assert fit.exponent > 0.6, fit


class TestGrouping:
    def test_group_by_families(self):
        rows = [
            {"n": 1, "y": 1.0, "fam": "a"},
            {"n": 2, "y": 2.0, "fam": "a"},
            {"n": 1, "y": 5.0, "fam": "b"},
            {"n": 2, "y": 5.0, "fam": "b"},
        ]
        fits = scaling_exponents(rows, x_field="n", y_field="y",
                                 group_by=lambda r: r["fam"])
        assert fits["a"].exponent == pytest.approx(1.0)
        assert fits["b"].exponent == pytest.approx(0.0)
