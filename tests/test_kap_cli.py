"""Tests for the ``python -m repro.kap`` command-line driver."""

import pytest

from repro.kap.__main__ import build_parser, main


class TestParser:
    def test_defaults_match_paper_setup(self):
        args = build_parser().parse_args([])
        assert args.nodes == 64 and args.procs_per_node == 16
        assert args.sync == "fence" and args.tree_arity == 2

    def test_all_flags_parse(self):
        args = build_parser().parse_args([
            "--nodes", "8", "--procs-per-node", "2", "--producers", "4",
            "--consumers", "6", "--value-size", "128", "--nputs", "2",
            "--naccess", "3", "--stride", "0", "--redundant",
            "--dir-width", "64", "--sync", "commit_wait",
            "--tree-arity", "4", "--seed", "7"])
        assert args.redundant and args.dir_width == 64
        assert args.sync == "commit_wait"

    def test_bad_sync_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--sync", "bogus"])


class TestMain:
    def test_small_run_exits_zero(self, capsys):
        rc = main(["--nodes", "4", "--procs-per-node", "2",
                   "--value-size", "64", "--naccess", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "producer" in out and "sync" in out and "consumer" in out
        assert "total simulated time" in out

    def test_consumerless_run_prints_dashes(self, capsys):
        rc = main(["--nodes", "2", "--procs-per-node", "2",
                   "--consumers", "0", "--naccess", "0"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "consumer   " in out

    def test_commit_wait_mode(self, capsys):
        rc = main(["--nodes", "4", "--procs-per-node", "2",
                   "--sync", "commit_wait"])
        assert rc == 0
        assert "sync=commit_wait" in capsys.readouterr().out
