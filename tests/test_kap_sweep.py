"""Tests for the KAP batch-sweep driver."""

import csv
import io

import pytest

from repro.kap.sweep import (CSV_FIELDS, SweepSpec, main, run_sweep,
                             write_csv)


SMALL = SweepSpec(nodes=(2, 4), procs_per_node=(2,), value_sizes=(8,),
                  redundant=(False, True))


class TestSweepSpec:
    def test_len_is_product(self):
        assert len(SMALL) == 4

    def test_configs_cover_product(self):
        combos = {(c.nnodes, c.redundant_values)
                  for c in SMALL.configs()}
        assert combos == {(2, False), (2, True), (4, False), (4, True)}

    def test_default_spec_is_reasonable(self):
        spec = SweepSpec()
        assert len(spec) == len(spec.nodes) * len(spec.value_sizes)


class TestRunSweep:
    def test_rows_have_all_fields(self):
        rows = run_sweep(SMALL)
        assert len(rows) == 4
        for row in rows:
            assert set(row) == set(CSV_FIELDS)
            assert row["max_fence_s"] > 0
            assert row["events"] > 0

    def test_progress_stream(self):
        buf = io.StringIO()
        run_sweep(SweepSpec(nodes=(2,), procs_per_node=(2,),
                            value_sizes=(8,)), progress=buf)
        assert "[1/1]" in buf.getvalue()

    def test_deterministic(self):
        r1 = run_sweep(SMALL)
        r2 = run_sweep(SMALL)
        assert r1 == r2


class TestCsv:
    def test_roundtrip(self):
        rows = run_sweep(SweepSpec(nodes=(2,), procs_per_node=(2,),
                                   value_sizes=(8,)))
        buf = io.StringIO()
        write_csv(rows, buf)
        buf.seek(0)
        parsed = list(csv.DictReader(buf))
        assert len(parsed) == 1
        assert parsed[0]["nnodes"] == "2"
        assert float(parsed[0]["max_fence_s"]) > 0

    def test_dir_width_none_is_empty_cell(self):
        rows = run_sweep(SweepSpec(nodes=(2,), procs_per_node=(2,),
                                   value_sizes=(8,), dir_widths=(None,)))
        buf = io.StringIO()
        write_csv(rows, buf)
        line = buf.getvalue().splitlines()[1]
        fields = line.split(",")
        assert fields[CSV_FIELDS.index("dir_width")] == ""


class TestCli:
    def test_stdout_csv(self, capsys):
        rc = main(["--nodes", "2", "--procs-per-node", "2",
                   "--value-size", "8", "--quiet"])
        assert rc == 0
        out = capsys.readouterr().out
        header = out.splitlines()[0]
        assert header == ",".join(CSV_FIELDS)
        assert len(out.splitlines()) == 2

    def test_file_output(self, tmp_path, capsys):
        path = tmp_path / "sweep.csv"
        rc = main(["--nodes", "2,4", "--procs-per-node", "2",
                   "--value-size", "8", "--redundant", "both",
                   "-o", str(path), "--quiet"])
        assert rc == 0
        rows = list(csv.DictReader(path.open()))
        assert len(rows) == 4

    def test_redundant_both(self, capsys):
        main(["--nodes", "2", "--procs-per-node", "2", "--value-size",
              "8", "--redundant", "both", "--quiet"])
        out = capsys.readouterr().out
        flags = {line.split(",")[CSV_FIELDS.index("redundant")]
                 for line in out.splitlines()[1:]}
        assert flags == {"0", "1"}

    def test_dir_width_list(self, capsys):
        main(["--nodes", "2", "--procs-per-node", "2", "--value-size",
              "8", "--dir-width", "none,4", "--quiet"])
        out = capsys.readouterr().out
        widths = {line.split(",")[CSV_FIELDS.index("dir_width")]
                  for line in out.splitlines()[1:]}
        assert widths == {"", "4"}
