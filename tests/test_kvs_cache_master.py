"""Unit tests for the slave cache and the master commit engine."""

import pytest

from repro.jsonutil import sha1_of
from repro.kvs.cache import SlaveCache
from repro.kvs.master import KvsMaster
from repro.kvs.store import EMPTY_DIR_SHA, make_val_obj


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def cache(clock):
    return SlaveCache(clock)


def obj_for(value):
    obj = make_val_obj(value)
    return sha1_of(obj), obj


class TestSlaveCache:
    def test_insert_and_get(self, cache):
        sha, obj = obj_for(1)
        cache.insert(sha, obj)
        assert cache.get(sha) == obj
        assert cache.stats.hits == 1

    def test_miss_counted(self, cache):
        assert cache.get("0" * 40) is None
        assert cache.stats.misses == 1

    def test_expiry_evicts_idle_entries(self, cache, clock):
        sha, obj = obj_for("old")
        cache.insert(sha, obj)
        clock.t = 100.0
        evicted = cache.expire(max_idle=50.0)
        assert evicted == 1
        assert sha not in cache

    def test_recent_use_prevents_expiry(self, cache, clock):
        sha, obj = obj_for("warm")
        cache.insert(sha, obj)
        clock.t = 100.0
        cache.get(sha)  # touch
        clock.t = 140.0
        assert cache.expire(max_idle=50.0) == 0
        assert sha in cache

    def test_pinned_entries_survive_expiry(self, cache, clock):
        sha, obj = obj_for("dirty")
        cache.insert(sha, obj, pin=True)
        clock.t = 1000.0
        assert cache.expire(max_idle=1.0) == 0
        cache.unpin(sha)
        assert cache.expire(max_idle=1.0) == 1

    def test_empty_dir_never_expires(self, cache, clock):
        clock.t = 1e9
        cache.expire(max_idle=1.0)
        assert EMPTY_DIR_SHA in cache

    def test_eviction_stat(self, cache, clock):
        for i in range(5):
            sha, obj = obj_for(i)
            cache.insert(sha, obj)
        clock.t = 10.0
        cache.expire(max_idle=5.0)
        assert cache.stats.evictions == 5


class TestKvsMaster:
    def test_initial_state(self):
        m = KvsMaster()
        assert m.root_sha == EMPTY_DIR_SHA and m.version == 0

    def test_commit_bumps_version_and_root(self):
        m = KvsMaster()
        sha, obj = obj_for(42)
        m.ingest_objects({sha: obj})
        res = m.commit([("a.b", sha)])
        assert res.version == 1
        assert res.root_sha != EMPTY_DIR_SHA
        assert m.root_sha == res.root_sha

    def test_empty_commit_still_bumps_version(self):
        m = KvsMaster()
        res = m.commit([])
        assert res.version == 1

    def test_commit_unknown_object_rejected(self):
        m = KvsMaster()
        with pytest.raises(KeyError):
            m.commit([("k", "f" * 40)])

    def test_fence_waits_for_all_contributions(self):
        m = KvsMaster()
        sha1v, obj1 = obj_for("one")
        sha2v, obj2 = obj_for("two")
        assert m.fence_add("f", 2, 1, [("k1", sha1v)], {sha1v: obj1}) is None
        assert m.version == 0  # nothing applied yet
        res = m.fence_add("f", 2, 1, [("k2", sha2v)], {sha2v: obj2})
        assert res is not None and res.version == 1
        assert m.pending_fences() == []

    def test_fence_aggregated_counts(self):
        m = KvsMaster()
        sha, obj = obj_for("x")
        res = m.fence_add("f", 4, 4, [("k", sha)], {sha: obj})
        assert res is not None  # one pre-aggregated contribution of 4

    def test_fence_nprocs_conflict_rejected(self):
        m = KvsMaster()
        m.fence_add("f", 2, 1, [], {})
        with pytest.raises(ValueError):
            m.fence_add("f", 3, 1, [], {})

    def test_fence_name_reusable_after_completion(self):
        m = KvsMaster()
        assert m.fence_add("f", 1, 1, [], {}) is not None
        assert m.fence_add("f", 1, 1, [], {}) is not None
        assert m.version == 2

    def test_interleaved_fences(self):
        m = KvsMaster()
        assert m.fence_add("a", 2, 1, [], {}) is None
        assert m.fence_add("b", 2, 1, [], {}) is None
        assert sorted(m.pending_fences()) == ["a", "b"]
        assert m.fence_add("b", 2, 1, [], {}) is not None
        assert m.fence_add("a", 2, 1, [], {}) is not None
