"""Multi-master KVS: subtree ownership delegation + root failover.

Exercises the two coupled tentpole moves end to end:

- **delegation** — a directory subtree handed to an interior broker
  that becomes its master (own root ref/version sequence), with the
  root tree binding a link object so cross-subtree reads compose;
- **replication + failover** — the root master streams its commit log
  to standbys; killing the root promotes the most-caught-up replica
  via the deterministic ring election and the namespace keeps serving.
"""

import pytest

from repro import make_cluster, standard_session
from repro.cmb.errors import EEXIST, EINVAL, ENOENT, RpcError
from repro.kvs import KvsClient
from repro.kvs.store import is_link_obj, link_of


def _session(n, seed, **kw):
    cluster = make_cluster(n, seed=seed)
    session = standard_session(cluster, **kw).start()
    return cluster, session


def _run(sim, gen, budget=30.0):
    proc = sim.spawn(gen)
    sim.run(until=sim.now + budget)
    assert proc.triggered, "scenario hung"
    return proc.value


# ----------------------------------------------------------------------
# delegation: routing, link objects, recall
# ----------------------------------------------------------------------
def test_delegated_subtree_routes_and_reads_compose():
    cluster, session = _session(8, seed=3)
    sim = cluster.sim

    def scenario():
        kvs5 = KvsClient(session.connect(5))
        yield kvs5.put("job.1.pre", "before")
        yield kvs5.put("other.x", 1)
        yield kvs5.commit()

        resp = yield kvs5.delegate("job.1", 3)
        assert resp["pfx"] == "job.1" and resp["rank"] == 3
        table = yield kvs5.owners()
        assert table["owners"] == {"job.1": 3}

        # The owner hosts the subtree master.
        table3 = yield KvsClient(session.connect(3)).owners()
        assert table3["hosted"] == ["job.1"]

        # Writes from other ranks land at the owner; mixed commits
        # split between owner and root and report per-subtree roots.
        kvs6 = KvsClient(session.connect(6), timeout=5.0, retries=8)
        yield kvs6.put("job.1.a", 11)
        yield kvs6.put("other.y", 2)
        resp = yield kvs6.commit()
        assert "job.1" in resp.get("subroots", {})

        # Reads route through the ownership table (and through the
        # link object for walkers that reach it via the root tree).
        kvs2 = KvsClient(session.connect(2), timeout=5.0, retries=8)
        assert (yield kvs2.get("job.1.a")) == 11
        assert (yield kvs2.get("job.1.pre")) == "before"
        assert (yield kvs2.get("other.y")) == 2
        assert sorted((yield kvs2.get_dir("job.1"))) == ["a", "pre"]

        # The root tree itself binds a link object at the prefix.
        root = session.module_at(0, "kvs")
        sub_sha = root.master.subtree_ref("job") and None
        from repro.kvs.hashtree import lookup_ref
        sha = lookup_ref(root.master.store, root.master.root_sha, "job.1")
        obj = root.master.store.get(sha)
        assert is_link_obj(obj)
        assert link_of(obj) == {"prefix": "job.1", "rank": 3}
        del sub_sha
        return "ok"

    assert _run(sim, scenario()) == "ok"
    session.stop()


def test_delegated_namespace_has_own_version_sequence():
    cluster, session = _session(8, seed=4)
    sim = cluster.sim

    def scenario():
        kvs = KvsClient(session.connect(1), timeout=5.0, retries=8)
        yield kvs.delegate("job.7", 5)
        root_v0 = (yield kvs.get_version())["version"]
        # Commits confined to the delegated namespace bump only the
        # delegate's sequence, not the root's.
        for i in range(3):
            yield kvs.put(f"job.7.k{i}", i)
            yield kvs.commit()
        root_v1 = (yield kvs.get_version())["version"]
        assert root_v1 == root_v0
        dm = session.module_at(5, "kvs").delegates["job.7"]
        assert dm.version >= 3
        return "ok"

    assert _run(sim, scenario()) == "ok"
    session.stop()


def test_fence_spans_root_and_delegated_namespaces():
    cluster, session = _session(8, seed=5)
    sim = cluster.sim

    def scenario():
        admin = KvsClient(session.connect(0))
        yield admin.delegate("job.2", 4)

        def fencer(idx, rank):
            k = KvsClient(session.connect(rank), timeout=5.0, retries=8)
            yield k.put(f"job.2.f{idx}", idx)
            yield k.put(f"root.f{idx}", idx * 10)
            yield k.fence("span.f", 2)
            # Fence ack implies the *delegated* parts are readable too.
            assert (yield k.get(f"job.2.f{1 - idx}")) == 1 - idx
            assert (yield k.get(f"root.f{1 - idx}")) == (1 - idx) * 10

        p1 = sim.spawn(fencer(0, 1))
        p2 = sim.spawn(fencer(1, 7))
        yield sim.all_of([p1, p2])
        return "ok"

    assert _run(sim, scenario()) == "ok"
    session.stop()


def test_recall_folds_subtree_back_and_clears_table():
    cluster, session = _session(8, seed=6)
    sim = cluster.sim

    def scenario():
        kvs = KvsClient(session.connect(2), timeout=5.0, retries=8)
        yield kvs.put("job.3.before", 1)
        yield kvs.commit()
        yield kvs.delegate("job.3", 6)
        yield kvs.put("job.3.during", 2)
        yield kvs.commit()
        yield kvs.recall("job.3")

        table = yield kvs.owners()
        assert table["owners"] == {}
        assert session.module_at(6, "kvs").delegates == {}
        # Everything — pre-delegation and delegated-era writes — now
        # lives in the root tree as plain directories.
        assert (yield kvs.get("job.3.before")) == 1
        assert (yield kvs.get("job.3.during")) == 2
        root = session.module_at(0, "kvs")
        from repro.kvs.hashtree import lookup_ref
        sha = lookup_ref(root.master.store, root.master.root_sha, "job.3")
        assert not is_link_obj(root.master.store.get(sha))
        return "ok"

    assert _run(sim, scenario()) == "ok"
    session.stop()


def test_delegate_validation_errors():
    cluster, session = _session(8, seed=7)
    sim = cluster.sim

    def scenario():
        kvs = KvsClient(session.connect(1))
        yield kvs.delegate("job.9", 3)
        with pytest.raises(RpcError) as ei:
            yield kvs.delegate("job.9", 5)      # already delegated
        assert ei.value.code == EEXIST
        with pytest.raises(RpcError) as ei:
            yield kvs.delegate("job.8", 0)      # owner == root master
        assert ei.value.code == EINVAL
        with pytest.raises(RpcError) as ei:
            yield kvs.recall("never.delegated")
        assert ei.value.code == ENOENT
        return "ok"

    assert _run(sim, scenario()) == "ok"
    session.stop()


def test_migration_under_load_is_sanitizer_clean():
    """Delegate and recall a prefix *while* clients write under it:
    every acknowledged write survives the moves and the runtime
    sanitizers (SAN102 stale reads / SAN103 lost acks) stay silent."""
    cluster, session = _session(8, seed=8)
    san = session.enable_sanitizers(span_check=False)
    sim = cluster.sim
    acked = []

    def writer(idx, rank):
        kvs = KvsClient(session.connect(rank), timeout=5.0, retries=10)
        for i in range(6):
            key = f"job.5.w{idx}.{i}"
            yield kvs.put(key, [idx, i])
            yield kvs.commit()
            acked.append((key, [idx, i]))
            yield sim.timeout(0.002)

    def admin():
        kvs = KvsClient(session.connect(0), timeout=5.0, retries=10)
        yield sim.timeout(0.004)
        yield kvs.delegate("job.5", 3)      # mid-stream handover
        yield sim.timeout(0.01)
        yield kvs.recall("job.5")           # and fold it back
        yield sim.timeout(0.004)
        yield kvs.delegate("job.5", 6)      # second hop
        yield sim.timeout(0.01)
        yield kvs.recall("job.5")

    writers = [sim.spawn(writer(i, r)) for i, r in
               enumerate((1, 2, 6, 7))]
    aproc = sim.spawn(admin())
    sim.run(until=30.0)
    assert all(p.triggered and p.ok for p in writers)
    assert aproc.triggered and aproc.ok

    def verify():
        kvs = KvsClient(session.connect(4), timeout=5.0, retries=10)
        for key, want in acked:
            assert (yield kvs.get(key)) == want, key
        return "ok"

    assert _run(sim, verify()) == "ok"
    assert list(san.finish()) == []
    session.stop()


# ----------------------------------------------------------------------
# root replication + ring-election failover
# ----------------------------------------------------------------------
def test_replicas_track_root_commit_log():
    cluster, session = _session(8, seed=9, kvs_replicas=(1, 2))
    sim = cluster.sim

    def scenario():
        kvs = KvsClient(session.connect(5), timeout=5.0, retries=8)
        for i in range(4):
            yield kvs.put(f"rep.k{i}", i)
            yield kvs.commit()
        return "ok"

    assert _run(sim, scenario()) == "ok"
    root = session.module_at(0, "kvs").master
    for r in (1, 2):
        standby = session.module_at(r, "kvs")._standby
        assert standby is not None
        assert (standby.version, standby.root_sha) == (root.version,
                                                       root.root_sha)
    session.stop()


def test_root_death_promotes_replica_and_serves():
    """Kill rank 0 (root master + tree root): the minimum live rank
    takes over the overlay, the ring election promotes the
    most-caught-up standby, and both old and new writes are served."""
    cluster, session = _session(
        8, seed=10, kvs_replicas=(1, 2), with_heartbeat=True,
        hb_period=0.05, hb_max_epochs=100000)
    # A (zero-rate) fault plan arms the pulse-starvation watchdog —
    # the only detector that can notice the *root* dying, since the
    # root is the heartbeat source and its death silences everything.
    from repro.sim import FaultPlan
    cluster.network.fault_plan = FaultPlan(seed=1)
    sim = cluster.sim

    def before():
        kvs = KvsClient(session.connect(5), timeout=5.0, retries=8)
        yield kvs.put("pre.k", "survives")
        yield kvs.commit()
        return "ok"

    assert _run(sim, before(), budget=5.0) == "ok"

    session.fail_rank(0)
    sim.run(until=sim.now + 3.0)    # detection + election + recovery

    promoted = [r for r in (1, 2)
                if session.module_at(r, "kvs").master is not None]
    assert len(promoted) == 1, promoted
    new_master = promoted[0]
    for r in range(1, 8):
        mod = session.module_at(r, "kvs")
        assert mod.master_rank == new_master

    def after():
        kvs = KvsClient(session.connect(6), timeout=2.0, retries=10)
        assert (yield kvs.get("pre.k")) == "survives"
        yield kvs.put("post.k", "works")
        yield kvs.commit()
        assert (yield kvs.get("post.k")) == "works"

        def fencer(idx, rank):
            k = KvsClient(session.connect(rank), timeout=2.0, retries=10)
            yield k.put(f"post.f{idx}", idx)
            yield k.fence("post.fence", 2)
            assert (yield k.get(f"post.f{1 - idx}")) == 1 - idx

        p1 = sim.spawn(fencer(0, 3))
        p2 = sim.spawn(fencer(1, 7))
        yield sim.all_of([p1, p2])
        return "ok"

    assert _run(sim, after(), budget=10.0) == "ok"
    session.stop()


def test_single_master_state_untouched_by_feature_plumbing():
    """With no replicas and no delegations, the multi-master state on
    every module stays inert — the event-identity guarantee's
    structural half (the behavioural half is the untouched tier-1
    suite and the byte-identical ablation table)."""
    cluster, session = _session(8, seed=11)
    sim = cluster.sim

    def scenario():
        kvs = KvsClient(session.connect(3))
        yield kvs.put("plain.k", 1)
        yield kvs.commit()
        yield kvs.fence("plain.f", 1)
        return (yield kvs.get("plain.k"))

    assert _run(sim, scenario()) == 1
    for r in range(8):
        mod = session.module_at(r, "kvs")
        assert mod.owners == {} and mod.delegates == {}
        assert mod.replicas == () and mod._standby is None
        assert mod._repl_log == [] and not mod._failed_over
    session.stop()
