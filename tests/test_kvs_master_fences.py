"""KvsMaster fence bookkeeping, exercised directly at the master layer.

The chaos recovery path (``reset_incomplete_fences`` + fence-epoch
replay) and the replicated-log variants (``fence_add_logged``) are
normally only reached through the full module/chaos stack; these tests
pin their contracts in isolation so a regression is attributed to the
master instead of surfacing as a flaky chaos run.
"""

import pytest

from repro.kvs.hashtree import lookup
from repro.kvs.master import CommitRecord, KvsMaster
from repro.kvs.store import make_val_obj, sha1_of


def _contrib(*pairs):
    """(ops, objs) for ``(key, value)`` pairs, as a slave would flush."""
    ops, objs = [], {}
    for key, value in pairs:
        obj = make_val_obj(value)
        sha = sha1_of(obj)
        ops.append((key, sha))
        objs[sha] = obj
    return ops, objs


def _read(master, key):
    return lookup(master.store, master.root_sha, key)


# ----------------------------------------------------------------------
# reset_incomplete_fences
# ----------------------------------------------------------------------
def test_reset_forgets_partial_contributions():
    m = KvsMaster()
    ops, objs = _contrib(("f.a", 1))
    assert m.fence_add("f", 3, 1, ops, objs) is None
    assert m.pending_fences() == ["f"]

    m.reset_incomplete_fences()
    # The entry stays (nprocs consistency is still checked) but its
    # count/ops are back to zero: completing now takes 3 fresh counts.
    assert m.pending_fences() == ["f"]
    with pytest.raises(ValueError):
        m.fence_add("f", 4, 1, [], {})

    res = m.fence_add("f", 3, 3, *_contrib(("f.a", 1), ("f.b", 2)))
    assert res is not None
    assert m.version == 1
    assert _read(m, "f.a") == 1 and _read(m, "f.b") == 2


def test_reset_then_cumulative_replay_sums_exactly():
    """The fence-epoch replay contract: after a reset every participant
    re-contributes its *cumulative* state, and the final tree holds
    exactly one copy of every key — no double-count, no loss."""
    m = KvsMaster()
    # Epoch 1: two of three participants got through.
    assert m.fence_add("r", 3, 1, *_contrib(("r.k0", 0))) is None
    assert m.fence_add("r", 3, 1, *_contrib(("r.k1", 10))) is None

    # Overlay broke; epoch bumps; master forgets partial counts.
    m.reset_incomplete_fences()

    # Epoch 2: everyone replays cumulatively (including the two whose
    # first contribution already landed).
    assert m.fence_add("r", 3, 1, *_contrib(("r.k0", 0))) is None
    assert m.fence_add("r", 3, 1, *_contrib(("r.k1", 10))) is None
    res = m.fence_add("r", 3, 1, *_contrib(("r.k2", 20)))
    assert res is not None and res.version == 1

    assert m.pending_fences() == []
    for i in range(3):
        assert _read(m, f"r.k{i}") == i * 10


def test_completed_fence_name_is_reusable():
    m = KvsMaster()
    assert m.fence_add("it", 2, 2, *_contrib(("a", 1))) is not None
    # KAP re-fences the same name every iteration — must start fresh,
    # including a different nprocs.
    assert m.fence_add("it", 3, 2, *_contrib(("b", 2))) is None
    assert m.fence_add("it", 3, 1, [], {}) is not None
    assert m.version == 2


def test_inconsistent_nprocs_rejected():
    m = KvsMaster()
    m.fence_add("n", 4, 1, [], {})
    with pytest.raises(ValueError, match="inconsistent nprocs"):
        m.fence_add("n", 5, 1, [], {})


# ----------------------------------------------------------------------
# fence_add_logged: the replicated-commit-log variant
# ----------------------------------------------------------------------
def test_fence_add_logged_record_is_self_contained():
    """The completing record must carry every object any contribution
    brought — including objects the master's store already held (the
    journal only captures objects *new* to the store) — so a standby
    that missed earlier traffic can still reproduce the state."""
    m = KvsMaster()
    # Pre-ingest one value through a plain commit, then reuse the same
    # value in a fence contribution: same content, same SHA1, so the
    # fence's journal never sees it as new.
    m.commit_logged(*_contrib(("seed", "dup")))

    ops1, objs1 = _contrib(("g.a", "dup"))
    dup_sha = ops1[0][1]
    assert m.fence_add_logged("g", 2, 1, ops1, objs1) == (None, None)
    res, rec = m.fence_add_logged("g", 2, 1, *_contrib(("g.b", "fresh")))
    assert res is not None and rec is not None
    assert rec.fence == "g"
    assert (rec.version, rec.root_sha) == (res.version, res.root_sha)
    assert dup_sha in rec.objs, "record missing a pre-stored object"


def test_fence_log_replay_reproduces_state_on_cold_standby():
    master = KvsMaster()
    log = []
    res, rec = master.commit_logged(*_contrib(("seed", "dup")))
    log.append(rec)
    assert master.fence_add_logged("g", 2, 1, *_contrib(("g.a", "dup"))) \
        == (None, None)
    res, rec = master.fence_add_logged("g", 2, 1, *_contrib(("g.b", "x")))
    assert rec is not None
    log.append(rec)

    standby = KvsMaster()
    for r in log:
        standby.apply_record(r)
    assert (standby.version, standby.root_sha) == (master.version,
                                                   master.root_sha)
    for key in ("seed", "g.a", "g.b"):
        assert _read(standby, key) == _read(master, key)


def test_apply_record_ignores_duplicates_and_requires_order():
    master = KvsMaster()
    recs = []
    for i in range(3):
        _, rec = master.commit_logged(*_contrib((f"k{i}", i)))
        recs.append(rec)

    standby = KvsMaster()
    standby.apply_record(recs[0])
    standby.apply_record(recs[0])          # duplicate: ignored
    assert standby.version == 1
    standby.apply_record(recs[1])
    standby.apply_record(recs[2])
    assert standby.version == 3
    assert standby.root_sha == master.root_sha


def test_reset_clears_logged_fence_accumulator():
    """After a reset the accumulated ``objs`` on the fence state are
    dropped too, and a full cumulative replay still yields a
    self-contained completing record."""
    m = KvsMaster()
    assert m.fence_add_logged("z", 2, 1, *_contrib(("z.a", 1))) \
        == (None, None)
    m.reset_incomplete_fences()

    assert m.fence_add_logged("z", 2, 1, *_contrib(("z.a", 1))) \
        == (None, None)
    res, rec = m.fence_add_logged("z", 2, 1, *_contrib(("z.b", 2)))
    assert res is not None

    standby = KvsMaster()
    standby.apply_record(rec)
    assert standby.root_sha == m.root_sha
    assert _read(standby, "z.a") == 1 and _read(standby, "z.b") == 2
