"""Distributed KVS protocol tests: the Section IV-B behaviours —
write-back puts, commits, fences with tree reduction, fault-in gets,
watch, and the three Vogels consistency properties."""

import pytest

from repro.cmb.api import RpcError
from repro.cmb.modules import BarrierModule, HeartbeatModule
from repro.cmb.session import CommsSession, ModuleSpec
from repro.cmb.topology import TreeTopology
from repro.kvs import KvsClient, KvsModule
from repro.sim.cluster import make_cluster


def make_kvs_session(n=8, arity=2, expiry=None, hb=False):
    cluster = make_cluster(n, seed=5)
    modules = [ModuleSpec(KvsModule, expiry=expiry),
               ModuleSpec(BarrierModule)]
    if hb:
        modules.append(ModuleSpec(HeartbeatModule, period=0.1,
                                  max_epochs=30))
    session = CommsSession(cluster, topology=TreeTopology(n, arity=arity),
                           modules=modules).start()
    return cluster, session


def run(cluster, *gens):
    procs = [cluster.sim.spawn(g) for g in gens]
    cluster.sim.run()
    for p in procs:
        assert p.ok, f"process failed: {p._exc!r}"
    return [p.value for p in procs]


class TestPutCommitGet:
    def test_put_is_local_until_commit(self):
        cluster, session = make_kvs_session()
        master = session.module_at(0, "kvs").master

        def writer():
            kvs = KvsClient(session.connect(5))
            yield kvs.put("a.b", 1)
            assert master.version == 0  # nothing flushed yet
            yield kvs.commit()
            assert master.version == 1

        run(cluster, writer())

    def test_get_own_write_after_commit(self):
        cluster, session = make_kvs_session()

        def writer():
            kvs = KvsClient(session.connect(7))
            yield kvs.put("deep.nested.key", {"v": [1, 2]})
            yield kvs.commit()
            return (yield kvs.get("deep.nested.key"))

        assert run(cluster, writer()) == [{"v": [1, 2]}]

    def test_cross_node_read_after_wait_version(self):
        cluster, session = make_kvs_session()
        done = {}

        def writer():
            kvs = KvsClient(session.connect(3))
            yield kvs.put("x", "hello")
            resp = yield kvs.commit()
            done["version"] = resp["version"]

        def reader():
            kvs = KvsClient(session.connect(6))
            while "version" not in done:
                yield cluster.sim.timeout(1e-5)
            yield kvs.wait_version(done["version"])
            return (yield kvs.get("x"))

        assert run(cluster, writer(), reader())[1] == "hello"

    def test_get_missing_key_is_rpc_error(self):
        cluster, session = make_kvs_session()

        def reader():
            kvs = KvsClient(session.connect(2))
            with pytest.raises(RpcError, match="not found"):
                yield kvs.get("ghost")
            return "ok"

        assert run(cluster, reader()) == ["ok"]

    def test_unlink_removes_key(self):
        cluster, session = make_kvs_session()

        def writer():
            kvs = KvsClient(session.connect(1))
            yield kvs.put("k", 1)
            yield kvs.commit()
            yield kvs.unlink("k")
            yield kvs.commit()
            with pytest.raises(RpcError, match="not found"):
                yield kvs.get("k")
            return "ok"

        assert run(cluster, writer()) == ["ok"]

    def test_get_dir_listing(self):
        cluster, session = make_kvs_session()

        def writer():
            kvs = KvsClient(session.connect(4))
            yield kvs.put("d.one", 1)
            yield kvs.put("d.two", 2)
            yield kvs.commit()
            return (yield kvs.get_dir("d"))

        assert run(cluster, writer()) == [["one", "two"]]

    def test_get_ref_returns_sha(self):
        cluster, session = make_kvs_session()

        def writer():
            kvs = KvsClient(session.connect(4))
            yield kvs.put("r", "val")
            yield kvs.commit()
            resp = yield kvs.get_ref("r")
            return resp["ref"]

        ref = run(cluster, writer())[0]
        assert len(ref) == 40

    def test_two_clients_same_node_have_separate_dirty_sets(self):
        cluster, session = make_kvs_session()
        order = []

        def client_a():
            kvs = KvsClient(session.connect(3))
            yield kvs.put("a", 1)
            order.append("a-put")
            # Never commits: "a" must not leak via client_b's commit.

        def client_b():
            kvs = KvsClient(session.connect(3))
            yield kvs.put("b", 2)
            yield cluster.sim.timeout(1e-3)
            yield kvs.commit()
            with pytest.raises(RpcError, match="not found"):
                yield kvs.get("a")
            return (yield kvs.get("b"))

        results = run(cluster, client_a(), client_b())
        assert results[1] == 2

    def test_bad_key_rejected_at_put(self):
        cluster, session = make_kvs_session()

        def writer():
            kvs = KvsClient(session.connect(0))
            with pytest.raises(RpcError):
                yield kvs.put("bad..key", 1)
            return "ok"

        assert run(cluster, writer()) == ["ok"]


class TestConsistencyProperties:
    """The three Vogels properties claimed in Section IV-B."""

    def test_read_your_writes(self):
        """A process having updated a data item never accesses an older
        value — even though its slave is weakly consistent."""
        cluster, session = make_kvs_session(n=15)

        def writer():
            kvs = KvsClient(session.connect(14))  # deepest leaf
            for i in range(5):
                yield kvs.put("ryw", i)
                yield kvs.commit()
                value = yield kvs.get("ryw")
                assert value == i, f"stale read {value} after writing {i}"
            return "ok"

        assert run(cluster, writer()) == ["ok"]

    def test_causal_consistency(self):
        """A writes, passes the version to B out of band; B waits for
        that version and must see A's value."""
        cluster, session = make_kvs_session(n=15)
        mailbox = []

        def process_a():
            kvs = KvsClient(session.connect(7))
            yield kvs.put("causal", "from-A")
            resp = yield kvs.commit()
            mailbox.append(resp["version"])  # the out-of-band message

        def process_b():
            kvs = KvsClient(session.connect(13))
            while not mailbox:
                yield cluster.sim.timeout(1e-6)
            yield kvs.wait_version(mailbox[0])
            return (yield kvs.get("causal"))

        assert run(cluster, process_a(), process_b())[1] == "from-A"

    def test_monotonic_reads(self):
        """Once a process saw version v's value it never reads an older
        one, even while updates race."""
        cluster, session = make_kvs_session(n=15)
        seen = []

        def writer():
            kvs = KvsClient(session.connect(3))
            for i in range(10):
                yield kvs.put("mono", i)
                yield kvs.commit()
                yield cluster.sim.timeout(5e-6)

        def reader():
            kvs = KvsClient(session.connect(14))
            for _ in range(30):
                try:
                    value = yield kvs.get("mono")
                    seen.append(value)
                except RpcError:
                    pass  # not yet visible
                yield cluster.sim.timeout(2e-6)

        run(cluster, writer(), reader())
        assert seen == sorted(seen), f"non-monotonic reads: {seen}"

    def test_root_versions_never_applied_out_of_order(self):
        cluster, session = make_kvs_session(n=15)

        def writer(node):
            kvs = KvsClient(session.connect(node))
            for i in range(5):
                yield kvs.put(f"w{node}.{i}", i)
                yield kvs.commit()

        run(cluster, writer(1), writer(8), writer(14))
        for rank in range(15):
            mod = session.module_at(rank, "kvs")
            assert mod.version == 15  # all commits observed everywhere

    def test_get_version_reflects_local_application(self):
        cluster, session = make_kvs_session()

        def writer():
            kvs = KvsClient(session.connect(6))
            v0 = (yield kvs.get_version())["version"]
            yield kvs.put("vv", 1)
            yield kvs.commit()
            v1 = (yield kvs.get_version())["version"]
            assert v1 == v0 + 1
            return "ok"

        assert run(cluster, writer()) == ["ok"]


class TestFence:
    def test_fence_is_collective_commit(self):
        cluster, session = make_kvs_session(n=8)
        N = 16
        master = session.module_at(0, "kvs").master

        def member(i):
            kvs = KvsClient(session.connect(i % 8))
            yield kvs.put(f"fence.k{i}", i)
            yield kvs.fence("f", N)
            # After the fence every member sees every other member's key.
            other = (i + 5) % N
            value = yield kvs.get(f"fence.k{other}")
            assert value == other
            return "ok"

        results = run(cluster, *[member(i) for i in range(N)])
        assert results == ["ok"] * N
        assert master.version == 1  # one combined commit

    def test_redundant_values_reduce_to_one_object(self):
        cluster, session = make_kvs_session(n=8)
        N = 16

        def member(i):
            kvs = KvsClient(session.connect(i % 8))
            yield kvs.put(f"red.k{i}", "same-value-everywhere")
            yield kvs.fence("f", N)

        run(cluster, *[member(i) for i in range(N)])
        master = session.module_at(0, "kvs").master
        # All 16 keys share one content object.
        from repro.kvs.store import make_val_obj
        from repro.jsonutil import sha1_of
        sha = sha1_of(make_val_obj("same-value-everywhere"))
        assert sha in master.store

    def test_fence_bytes_unique_vs_redundant(self):
        """The Figure 3 asymmetry at the transport level: a fence of
        unique values moves far more bytes than redundant ones."""
        def total_bytes(redundant):
            cluster, session = make_kvs_session(n=8)
            N = 16

            def member(i):
                kvs = KvsClient(session.connect(i % 8))
                # Same 512-byte size either way; only redundancy differs.
                value = "R" * 512 if redundant else f"u{i:02d}" + "x" * 508
                yield kvs.put(f"k{i}", value)
                yield kvs.fence("f", N)

            before = cluster.network.total_bytes_sent()
            run(cluster, *[member(i) for i in range(N)])
            return cluster.network.total_bytes_sent() - before

        unique = total_bytes(False)
        redundant = total_bytes(True)
        assert unique > 2 * redundant

    def test_fence_with_pure_consumers(self):
        """Participants without dirty data still synchronize."""
        cluster, session = make_kvs_session(n=4)

        def producer():
            kvs = KvsClient(session.connect(1))
            yield kvs.put("p", 1)
            yield kvs.fence("f", 2)
            return "p"

        def consumer():
            kvs = KvsClient(session.connect(3))
            yield kvs.fence("f", 2)
            return (yield kvs.get("p"))

        assert run(cluster, producer(), consumer()) == ["p", 1]

    def test_two_sequential_fences(self):
        cluster, session = make_kvs_session(n=4)
        N = 8

        def member(i):
            kvs = KvsClient(session.connect(i % 4))
            yield kvs.put(f"r1.k{i}", i)
            yield kvs.fence("f1", N)
            yield kvs.put(f"r2.k{i}", i * 10)
            yield kvs.fence("f2", N)
            return (yield kvs.get(f"r2.k{(i + 1) % N}"))

        results = run(cluster, *[member(i) for i in range(N)])
        assert results == [((i + 1) % N) * 10 for i in range(N)]

    def test_single_rank_session_fence(self):
        cluster, session = make_kvs_session(n=1)

        def solo():
            kvs = KvsClient(session.connect(0))
            yield kvs.put("k", 1)
            yield kvs.fence("f", 1)
            return (yield kvs.get("k"))

        assert run(cluster, solo()) == [1]


class TestFaultInAndCaching:
    def test_objects_cached_along_the_chain(self):
        cluster, session = make_kvs_session(n=15)

        def writer():
            kvs = KvsClient(session.connect(0))
            yield kvs.put("shared.obj", "payload")
            yield kvs.commit()

        def reader(rank):
            def gen():
                kvs = KvsClient(session.connect(rank))
                yield kvs.wait_version(1)
                return (yield kvs.get("shared.obj"))
            return gen()

        run(cluster, writer())
        # Deep leaf faults the object in: every ancestor caches it.
        run(cluster, reader(14))
        for rank in (14, 6, 2):  # 14 -> 6 -> 2 -> 0 chain
            mod = session.module_at(rank, "kvs")
            assert mod.cache is not None
            # root dir + shared dir + value all present now
            assert len(mod.cache) >= 3

    def test_second_read_is_local(self):
        cluster, session = make_kvs_session(n=15)

        def writer():
            kvs = KvsClient(session.connect(0))
            yield kvs.put("warm.key", 1)
            yield kvs.commit()

        run(cluster, writer())
        sim = cluster.sim
        spans = []

        def reader():
            kvs = KvsClient(session.connect(14))
            yield kvs.wait_version(1)
            t0 = sim.now
            yield kvs.get("warm.key")
            spans.append(sim.now - t0)
            t0 = sim.now
            yield kvs.get("warm.key")
            spans.append(sim.now - t0)

        run(cluster, reader())
        assert spans[1] < spans[0] / 2  # cache hit skips the chain

    def test_concurrent_faults_coalesce(self):
        cluster, session = make_kvs_session(n=15)

        def writer():
            kvs = KvsClient(session.connect(0))
            yield kvs.put("hot.key", "x" * 1000)
            yield kvs.commit()

        run(cluster, writer())
        master_mod = session.module_at(0, "kvs")
        served_before = master_mod.broker.requests_handled

        def reader():
            kvs = KvsClient(session.connect(14))
            yield kvs.wait_version(1)
            return (yield kvs.get("hot.key"))

        # Many simultaneous readers on the same node: in-flight load
        # coalescing means the upstream chain sees a bounded number of
        # load requests, not one per reader.
        results = run(cluster, *[reader() for _ in range(10)])
        assert all(r == "x" * 1000 for r in results)
        served = master_mod.broker.requests_handled - served_before
        assert served <= 6

    def test_dropcache_forces_refetch(self):
        cluster, session = make_kvs_session(n=4)

        def flow():
            kvs = KvsClient(session.connect(3))
            yield kvs.put("k", 7)
            yield kvs.commit()
            yield kvs.get("k")
            resp = yield kvs.handle.rpc("kvs.dropcache")
            assert resp["evicted"] > 0
            return (yield kvs.get("k"))  # refetched through the chain

        assert run(cluster, flow()) == [7]

    def test_heartbeat_driven_expiry(self):
        cluster, session = make_kvs_session(n=4, expiry=0.2, hb=True)

        def flow():
            kvs = KvsClient(session.connect(3))
            yield kvs.put("exp.k", 1)
            yield kvs.commit()
            yield kvs.get("exp.k")
            mod = session.module_at(3, "kvs")
            populated = len(mod.cache)
            yield cluster.sim.timeout(1.5)  # many heartbeats idle
            assert len(mod.cache) < populated
            return "ok"

        assert run(cluster, flow()) == ["ok"]

    def test_stats_rpc(self):
        cluster, session = make_kvs_session(n=4)

        def flow():
            kvs = KvsClient(session.connect(2))
            yield kvs.put("s", 1)
            yield kvs.commit()
            yield kvs.get("s")
            local = yield kvs.stats()
            remote = yield kvs.stats(rank=0)
            return local, remote

        local, remote = run(cluster, flow())[0]
        assert local["rank"] == 2 and not local["is_master"]
        assert remote["rank"] == 0 and remote["is_master"]


class TestWatch:
    def test_watch_fires_on_change(self):
        cluster, session = make_kvs_session(n=8)
        fired = []

        def watcher():
            kvs = KvsClient(session.connect(6))
            kvs.watch("watched.key", lambda k, v: fired.append((k, v)))
            yield cluster.sim.timeout(1e-3)

        def writer():
            kvs = KvsClient(session.connect(3))
            yield cluster.sim.timeout(2e-4)
            yield kvs.put("watched.key", "v1")
            yield kvs.commit()

        run(cluster, watcher(), writer())
        assert fired == [("watched.key", "v1")]

    def test_watch_does_not_fire_without_change(self):
        cluster, session = make_kvs_session(n=8)
        fired = []

        def watcher():
            kvs = KvsClient(session.connect(6))
            kvs.watch("quiet.key", lambda k, v: fired.append(v))
            yield cluster.sim.timeout(1e-3)

        def writer():
            kvs = KvsClient(session.connect(3))
            yield kvs.put("other.key", 1)
            yield kvs.commit()
            yield kvs.put("other.key2", 2)
            yield kvs.commit()

        run(cluster, watcher(), writer())
        assert fired == []

    def test_watch_directory_fires_on_deep_change(self):
        """Hash-tree organization: a watched directory changes when
        keys under it at any depth change."""
        cluster, session = make_kvs_session(n=8)
        fired = []

        def watcher():
            kvs = KvsClient(session.connect(7))
            kvs.watch("tree", lambda k, v: fired.append(v))
            yield cluster.sim.timeout(1e-3)

        def writer():
            kvs = KvsClient(session.connect(2))
            yield cluster.sim.timeout(2e-4)
            yield kvs.put("tree.a.b.c.leaf", 99)
            yield kvs.commit()

        run(cluster, watcher(), writer())
        assert fired == [{"__dir__": ["a"]}]

    def test_watch_sequence_of_updates(self):
        cluster, session = make_kvs_session(n=4)
        fired = []

        def watcher():
            kvs = KvsClient(session.connect(3))
            kvs.watch("seq", lambda k, v: fired.append(v))
            yield cluster.sim.timeout(5e-3)

        def writer():
            kvs = KvsClient(session.connect(1))
            for i in range(4):
                yield cluster.sim.timeout(5e-4)
                yield kvs.put("seq", i)
                yield kvs.commit()

        run(cluster, watcher(), writer())
        assert fired == [0, 1, 2, 3]

    def test_cancel_stops_callbacks(self):
        cluster, session = make_kvs_session(n=4)
        fired = []

        def flow():
            kvs = KvsClient(session.connect(3))
            w = kvs.watch("c.key", lambda k, v: fired.append(v))
            yield cluster.sim.timeout(1e-4)
            w.cancel()
            writer = KvsClient(session.connect(1))
            yield writer.put("c.key", 1)
            yield writer.commit()
            yield cluster.sim.timeout(1e-3)

        run(cluster, flow())
        assert fired == []

    def test_watch_key_removal_fires_none(self):
        cluster, session = make_kvs_session(n=4)
        fired = []

        def flow():
            kvs = KvsClient(session.connect(2))
            yield kvs.put("gone", 1)
            yield kvs.commit()
            kvs.watch("gone", lambda k, v: fired.append(v))
            yield cluster.sim.timeout(1e-4)
            yield kvs.unlink("gone")
            yield kvs.commit()
            yield cluster.sim.timeout(1e-3)

        run(cluster, flow())
        assert fired == [None]


class TestCommitWaitSync:
    def test_commit_plus_wait_version_synchronizes(self):
        """The KAP 'commit_wait' alternative to fence."""
        cluster, session = make_kvs_session(n=8)
        NP = 8

        def producer(i):
            kvs = KvsClient(session.connect(i))
            yield kvs.put(f"cw.k{i}", i)
            yield kvs.commit()
            yield kvs.wait_version(NP)
            return (yield kvs.get(f"cw.k{(i + 3) % NP}"))

        results = run(cluster, *[producer(i) for i in range(NP)])
        assert results == [(i + 3) % NP for i in range(NP)]
