"""Tests for the distributed-KVS-master extension (the paper's stated
future work: "distributing the KVS master itself") and the tree-routed
rank addressing it relies on."""

import hashlib

import pytest

from repro.cmb.message import Message
from repro.cmb.module import CommsModule
from repro.cmb.session import CommsSession, ModuleSpec
from repro.cmb.topology import TreeTopology
from repro.kvs import KvsClient, KvsModule
from repro.kvs.hashtree import split_key
from repro.kvs.sharding import (ShardedKvsClient, _shard_of_top,
                                shard_of_key, sharded_kvs_specs,
                                spread_master_ranks)
from repro.sim.cluster import make_cluster


class EchoModule(CommsModule):
    name = "echo"

    def req_ping(self, msg: Message) -> None:
        self.respond(msg, {"served_by": self.rank})


def make_session(n=16, modules=(), seed=41):
    cluster = make_cluster(n, seed=seed)
    session = CommsSession(cluster, topology=TreeTopology(n),
                           modules=list(modules)).start()
    return cluster, session


def run_all(cluster, gens):
    procs = [cluster.sim.spawn(g) for g in gens]
    cluster.sim.run()
    for p in procs:
        assert p.ok, repr(p._exc)
    return [p.value for p in procs]


class TestTopologyRouting:
    def test_is_in_subtree(self):
        t = TreeTopology(15, arity=2)
        assert t.is_in_subtree(7, 1)   # 7 under 3 under 1
        assert t.is_in_subtree(1, 1)
        assert not t.is_in_subtree(2, 1)
        assert t.is_in_subtree(14, 0)

    def test_next_hop_up_and_down(self):
        t = TreeTopology(15, arity=2)
        assert t.next_hop_toward(7, 0) == 3   # upward
        assert t.next_hop_toward(0, 7) == 1   # downward
        assert t.next_hop_toward(1, 7) == 3
        assert t.next_hop_toward(7, 8) == 3   # over the LCA

    def test_next_hop_same_rank_rejected(self):
        with pytest.raises(ValueError):
            TreeTopology(7).next_hop_toward(3, 3)

    def test_path_endpoints_and_adjacency(self):
        t = TreeTopology(15, arity=2)
        path = t.path(7, 8)
        assert path[0] == 7 and path[-1] == 8
        assert path == [7, 3, 8]
        for a, b in zip(path, path[1:]):
            assert t.parent(a) == b or t.parent(b) == a

    def test_path_lengths_logarithmic(self):
        t = TreeTopology(127, arity=2)
        assert len(t.path(63, 126)) <= 2 * t.max_depth() + 1


class TestTreeRankRpc:
    def test_reaches_any_rank(self):
        cluster, session = make_session(modules=[ModuleSpec(EchoModule)])

        def client():
            # drive through a broker-level API from rank 5's broker
            ev = session.brokers[5].rpc_rank_tree(11, "echo.ping", {})
            resp = yield ev
            return resp

        [resp] = run_all(cluster, [client()])
        assert resp == {"served_by": 11}

    def test_self_addressed(self):
        cluster, session = make_session(modules=[ModuleSpec(EchoModule)])

        def client():
            return (yield session.brokers[4].rpc_rank_tree(
                4, "echo.ping", {}))

        [resp] = run_all(cluster, [client()])
        assert resp == {"served_by": 4}

    def test_tree_routing_beats_ring(self):
        cluster, session = make_session(modules=[ModuleSpec(EchoModule)])
        sim = cluster.sim
        spans = {}

        def client():
            t0 = sim.now
            yield session.brokers[1].rpc_rank_tree(14, "echo.ping", {})
            spans["tree"] = sim.now - t0
            t0 = sim.now
            yield session.brokers[1].rpc_rank(14, "echo.ping", {})
            spans["ring"] = sim.now - t0

        run_all(cluster, [client()])
        assert spans["tree"] < spans["ring"]


class TestShardPlacement:
    def test_shard_of_key_stable_and_in_range(self):
        for key in ("a.b", "ns7.x.y", "zzz"):
            s = shard_of_key(key, 4)
            assert 0 <= s < 4
            assert s == shard_of_key(key, 4)

    def test_same_toplevel_same_shard(self):
        assert shard_of_key("job1.a", 8) == shard_of_key("job1.z.q", 8)

    def test_spread_master_ranks(self):
        assert spread_master_ranks(4, 16) == [0, 4, 8, 12]
        assert spread_master_ranks(1, 16) == [0]
        with pytest.raises(ValueError):
            spread_master_ranks(0, 16)
        with pytest.raises(ValueError):
            spread_master_ranks(17, 16)

    def test_specs_shape(self):
        specs = sharded_kvs_specs(3, 16)
        assert [s.config["name"] for s in specs] == ["kvs0", "kvs1", "kvs2"]
        assert [s.config["master_rank"] for s in specs] == [0, 5, 10]

    def test_memoized_routing_matches_uncached_exactly(self):
        """The lru_cache on the per-component digest must be a pure
        speedup: for every (key, nshards) pair the memoized router
        answers exactly what a from-scratch digest computes."""

        def uncached(key, nshards):
            top = split_key(key)[0]
            digest = hashlib.sha1(top.encode("utf-8")).digest()
            return int.from_bytes(digest[:4], "big") % nshards

        keys = ([f"job.{i}.task.{i * 7}" for i in range(50)]
                + [f"svc{i}.state" for i in range(50)]
                + ["a", "a.b", "a.b.c", "zzz.deep.deep.deep"])
        for nshards in (1, 2, 3, 7, 8, 64):
            for key in keys:
                assert shard_of_key(key, nshards) == uncached(key, nshards)
                # And again, now certainly served from the cache.
                assert shard_of_key(key, nshards) == uncached(key, nshards)

    def test_memoization_actually_caches(self):
        _shard_of_top.cache_clear()
        shard_of_key("memo.a", 4)
        shard_of_key("memo.b", 4)       # same top-level component
        info = _shard_of_top.cache_info()
        assert info.hits >= 1 and info.misses == 1


class TestShardedProtocol:
    def _session(self, nshards=4, n=16):
        return make_session(n=n, modules=sharded_kvs_specs(nshards, n))

    def test_put_commit_get_roundtrip(self):
        cluster, session = self._session()

        def worker(i):
            kvs = ShardedKvsClient(session.connect(i % 16), 4)
            yield kvs.put(f"ns{i}.v", i * 3)
            yield kvs.commit()
            return (yield kvs.get(f"ns{i}.v"))

        assert run_all(cluster, [worker(i) for i in range(8)]) == \
            [i * 3 for i in range(8)]

    def test_masters_actually_distributed(self):
        cluster, session = self._session()

        def worker(i):
            kvs = ShardedKvsClient(session.connect(i), 4)
            yield kvs.put(f"ns{i}.v", i)
            yield kvs.commit()

        run_all(cluster, [worker(i) for i in range(16)])
        masters_with_data = []
        for shard, rank in enumerate(spread_master_ranks(4, 16)):
            mod = session.module_at(rank, f"kvs{shard}")
            assert mod.master is not None
            if mod.master.version > 0:
                masters_with_data.append(rank)
        assert len(masters_with_data) >= 3  # load spread over masters

    def test_cross_shard_fence(self):
        cluster, session = self._session()
        N = 16

        def worker(i):
            kvs = ShardedKvsClient(session.connect(i % 16), 4)
            yield kvs.put(f"ns{i}.x", i)
            yield kvs.fence("xf", N)
            return (yield kvs.get(f"ns{(i + 5) % N}.x"))

        assert run_all(cluster, [worker(i) for i in range(N)]) == \
            [(i + 5) % N for i in range(N)]

    def test_single_shard_fence(self):
        cluster, session = self._session()
        N = 8
        shard = shard_of_key("shared.k0", 4)

        def worker(i):
            kvs = ShardedKvsClient(session.connect(i % 16), 4)
            yield kvs.put(f"shared.k{i}", i)
            yield kvs.fence_shard(shard, "sf", N)
            return (yield kvs.get(f"shared.k{(i + 1) % N}"))

        assert run_all(cluster, [worker(i) for i in range(N)]) == \
            [(i + 1) % N for i in range(N)]

    def test_per_shard_versions_independent(self):
        cluster, session = self._session()

        def worker():
            kvs = ShardedKvsClient(session.connect(2), 4)
            target = kvs.shard_of("only.here")
            yield kvs.put("only.here", 1)
            yield kvs.commit_shard(target)
            versions = []
            for s in range(4):
                v = yield kvs.get_version(s)
                versions.append(v["version"])
            return target, versions

        [(target, versions)] = run_all(cluster, [worker()])
        assert versions[target] == 1
        assert sum(versions) == 1  # other shards untouched

    def test_watch_on_shard(self):
        cluster, session = self._session()
        fired = []

        def watcher():
            kvs = ShardedKvsClient(session.connect(7), 4)
            kvs.watch("w.key", lambda k, v: fired.append(v))
            yield cluster.sim.timeout(2e-3)

        def writer():
            kvs = ShardedKvsClient(session.connect(3), 4)
            yield cluster.sim.timeout(2e-4)
            yield kvs.put("w.key", "seen")
            yield kvs.commit_shard(kvs.shard_of("w.key"))

        run_all(cluster, [watcher(), writer()])
        assert fired == ["seen"]

    def test_single_shard_degenerates_to_classic(self):
        cluster, session = make_session(
            modules=sharded_kvs_specs(1, 16, prefix="kvs"))

        def worker():
            kvs = ShardedKvsClient(session.connect(5), 1)
            yield kvs.put("a.b", 9)
            yield kvs.commit()
            return (yield kvs.get("a.b"))

        assert run_all(cluster, [worker()]) == [9]

    def test_nonroot_master_chain_caches(self):
        """Fault-in toward a relocated master still populates caches
        along the path."""
        cluster, session = self._session()
        # Find a key owned by the shard mastered at rank 8.
        nshards = 4
        key = None
        for i in range(100):
            candidate = f"probe{i}.data"
            if spread_master_ranks(nshards, 16)[
                    shard_of_key(candidate, nshards)] == 8:
                key = candidate
                break
        assert key is not None
        shard = shard_of_key(key, nshards)

        def writer():
            kvs = ShardedKvsClient(session.connect(8), nshards)
            yield kvs.put(key, "payload")
            yield kvs.commit_shard(shard)

        run_all(cluster, [writer()])

        def reader():
            kvs = ShardedKvsClient(session.connect(15), nshards)
            yield kvs.wait_version(shard, 1)
            return (yield kvs.get(key))

        [value] = run_all(cluster, [reader()])
        assert value == "payload"
        # The slave at rank 15 now holds the objects.
        mod = session.module_at(15, f"kvs{shard}")
        assert len(mod.cache) >= 3

    def test_invalid_shard_counts(self):
        cluster, session = self._session()
        with pytest.raises(ValueError):
            ShardedKvsClient(session.connect(0, collective=False), 0)


class TestDirtyShardCommit:
    def _session(self, nshards=4, n=16):
        return make_session(n=n, modules=sharded_kvs_specs(nshards, n))

    def test_commit_touches_only_dirty_shards(self):
        cluster, session = self._session()

        def worker():
            kvs = ShardedKvsClient(session.connect(3), 4)
            yield kvs.put("only.here", 1)       # one shard dirtied
            target = kvs.shard_of("only.here")
            results = yield kvs.commit()
            assert len(results) == 1            # single-shard fan-out
            versions = []
            for s in range(4):
                v = yield kvs.get_version(s)
                versions.append(v["version"])
            return target, versions

        [(target, versions)] = run_all(cluster, [worker()])
        assert versions[target] == 1
        assert sum(versions) == 1   # untouched masters never committed

    def test_commit_clears_dirty_and_falls_back_to_shard0(self):
        cluster, session = self._session()

        def worker():
            kvs = ShardedKvsClient(session.connect(5), 4)
            yield kvs.put("dirt.a", 1)
            yield kvs.commit()
            assert kvs._dirty == set()
            # A write-free commit still yields a version (shard 0).
            results = yield kvs.commit()
            assert len(results) == 1
            assert "version" in results[0]
            return "ok"

        assert run_all(cluster, [worker()]) == ["ok"]

    def test_multi_shard_batch_fans_out_to_each(self):
        cluster, session = self._session()

        def worker():
            kvs = ShardedKvsClient(session.connect(9), 4)
            shards = set()
            i = 0
            while len(shards) < 3:      # dirty three distinct shards
                key = f"fan{i}.x"
                if kvs.shard_of(key) not in shards:
                    shards.add(kvs.shard_of(key))
                    yield kvs.put(key, i)
                i += 1
            assert kvs._dirty == shards
            results = yield kvs.commit()
            assert len(results) == 3
            return sorted(shards)

        [shards] = run_all(cluster, [worker()])
        # Exactly the dirtied masters committed.
        versions = [session.module_at(r, f"kvs{s}").master.version
                    for s, r in enumerate(spread_master_ranks(4, 16))]
        assert [s for s, v in enumerate(versions) if v > 0] == shards

    def test_commit_shard_escape_hatch_clears_dirty_entry(self):
        cluster, session = self._session()

        def worker():
            kvs = ShardedKvsClient(session.connect(2), 4)
            yield kvs.put("esc.k", 7)
            shard = kvs.shard_of("esc.k")
            yield kvs.commit_shard(shard)
            assert shard not in kvs._dirty
            return (yield kvs.get("esc.k"))

        assert run_all(cluster, [worker()]) == [7]

    def test_unlink_dirties_owning_shard(self):
        cluster, session = self._session()

        def worker():
            kvs = ShardedKvsClient(session.connect(4), 4)
            yield kvs.put("gone.k", 1)
            yield kvs.commit()
            yield kvs.unlink("gone.k")
            assert kvs._dirty == {kvs.shard_of("gone.k")}
            yield kvs.commit()
            try:
                yield kvs.get("gone.k")
            except Exception:
                return "unlinked"
            return "still-there"

        assert run_all(cluster, [worker()]) == ["unlinked"]
