"""Unit and property-based tests for the CAS store and hash tree."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.jsonutil import sha1_of
from repro.kvs.hashtree import (KvsPathError, apply_update, apply_updates,
                                list_dir, lookup, lookup_ref, split_key)
from repro.kvs.store import (EMPTY_DIR, EMPTY_DIR_SHA, ObjectStore,
                             dir_entries, is_dir_obj, is_val_obj,
                             make_dir_obj, make_val_obj, obj_size, val_of)


def vput(store, value):
    """Store a value object, returning its sha."""
    return store.put_obj(make_val_obj(value))


class TestObjects:
    def test_val_obj_roundtrip(self):
        obj = make_val_obj({"nested": [1, 2]})
        assert is_val_obj(obj) and not is_dir_obj(obj)
        assert val_of(obj) == {"nested": [1, 2]}

    def test_dir_obj_roundtrip(self):
        obj = make_dir_obj({"a": "sha1", "b": "sha2"})
        assert is_dir_obj(obj) and not is_val_obj(obj)
        assert dir_entries(obj) == {"a": "sha1", "b": "sha2"}

    def test_type_confusion_raises(self):
        with pytest.raises(TypeError):
            val_of(make_dir_obj())
        with pytest.raises(TypeError):
            dir_entries(make_val_obj(1))

    def test_empty_dir_constant(self):
        assert sha1_of(EMPTY_DIR) == EMPTY_DIR_SHA

    def test_obj_size_tracks_content(self):
        assert obj_size(make_val_obj("x" * 100)) > obj_size(make_val_obj("x"))


class TestObjectStore:
    def test_put_get(self):
        store = ObjectStore()
        sha = vput(store, 42)
        assert store.get(sha) == make_val_obj(42)
        assert sha in store

    def test_put_is_idempotent(self):
        store = ObjectStore()
        n0 = len(store)
        sha1 = vput(store, "same")
        sha2 = vput(store, "same")
        assert sha1 == sha2 and len(store) == n0 + 1

    def test_empty_dir_preloaded(self):
        store = ObjectStore()
        assert store.get(EMPTY_DIR_SHA) == EMPTY_DIR

    def test_put_with_sha_verify(self):
        store = ObjectStore()
        obj = make_val_obj(1)
        with pytest.raises(ValueError):
            store.put_with_sha("deadbeef" * 5, obj, verify=True)
        store.put_with_sha(sha1_of(obj), obj, verify=True)
        assert store.get(sha1_of(obj)) == obj

    def test_discard(self):
        store = ObjectStore()
        sha = vput(store, 5)
        store.discard(sha)
        assert store.get(sha) is None
        store.discard(sha)  # idempotent


class TestSplitKey:
    def test_basic(self):
        assert split_key("a.b.c") == ["a", "b", "c"]

    def test_single(self):
        assert split_key("k") == ["k"]

    @pytest.mark.parametrize("bad", ["", ".", "a.", ".a", "a..b"])
    def test_malformed(self, bad):
        with pytest.raises(KvsPathError):
            split_key(bad)


class TestLookup:
    def test_paper_worked_example(self):
        """The Section IV-B walk: store a.b.c = 42, look it up step by
        step through directory objects, then update to 43 and observe a
        brand-new root reference."""
        store = ObjectStore()
        root = apply_update(store, EMPTY_DIR_SHA, "a.b.c", vput(store, 42))
        # Manual 4-step lookup, as in the paper.
        a_sha = dir_entries(store.get(root))["a"]
        b_sha = dir_entries(store.get(a_sha))["b"]
        c_sha = dir_entries(store.get(b_sha))["c"]
        assert val_of(store.get(c_sha)) == 42
        # Update produces a completely new root.
        root2 = apply_update(store, root, "a.b.c", vput(store, 43))
        assert root2 != root
        assert lookup(store, root2, "a.b.c") == 43
        # The old tree is still intact (content addressing).
        assert lookup(store, root, "a.b.c") == 42

    def test_missing_key(self):
        store = ObjectStore()
        with pytest.raises(KvsPathError):
            lookup(store, EMPTY_DIR_SHA, "nope")

    def test_value_blocking_path(self):
        store = ObjectStore()
        root = apply_update(store, EMPTY_DIR_SHA, "a", vput(store, 1))
        with pytest.raises(KvsPathError):
            lookup(store, root, "a.b")

    def test_lookup_directory_returns_listing(self):
        store = ObjectStore()
        root = apply_update(store, EMPTY_DIR_SHA, "d.x", vput(store, 1))
        root = apply_update(store, root, "d.y", vput(store, 2))
        assert lookup(store, root, "d") == {"__dir__": ["x", "y"]}

    def test_list_dir_root(self):
        store = ObjectStore()
        root = apply_update(store, EMPTY_DIR_SHA, "top", vput(store, 1))
        assert set(list_dir(store, root, "")) == {"top"}

    def test_fetch_callback_fills_missing(self):
        master = ObjectStore()
        root = apply_update(master, EMPTY_DIR_SHA, "a.b", vput(master, 7))
        # A slave with an empty store faults through `fetch`.
        slave = ObjectStore()
        fetched = []

        def fetch(sha):
            fetched.append(sha)
            obj = master.get(sha)
            slave.put_with_sha(sha, obj)
            return obj

        assert lookup(slave, root, "a.b", fetch) == 7
        assert len(fetched) >= 2  # root dir + a dir (+ value)

    def test_lookup_without_fetch_raises_on_missing(self):
        master = ObjectStore()
        root = apply_update(master, EMPTY_DIR_SHA, "a", vput(master, 1))
        with pytest.raises(KeyError):
            lookup(ObjectStore(), root, "a")


class TestApplyUpdates:
    def test_unlink(self):
        store = ObjectStore()
        root = apply_update(store, EMPTY_DIR_SHA, "k", vput(store, 1))
        root = apply_update(store, root, "k", None)
        with pytest.raises(KvsPathError):
            lookup(store, root, "k")

    def test_value_replaces_directory(self):
        store = ObjectStore()
        root = apply_update(store, EMPTY_DIR_SHA, "a.b", vput(store, 1))
        root = apply_update(store, root, "a", vput(store, "flat"))
        assert lookup(store, root, "a") == "flat"
        with pytest.raises(KvsPathError):
            lookup(store, root, "a.b")

    def test_directory_replaces_value(self):
        store = ObjectStore()
        root = apply_update(store, EMPTY_DIR_SHA, "a", vput(store, 1))
        root = apply_update(store, root, "a.b", vput(store, 2))
        assert lookup(store, root, "a.b") == 2

    def test_batched_empty_ops_keeps_root(self):
        store = ObjectStore()
        root = apply_update(store, EMPTY_DIR_SHA, "k", vput(store, 1))
        assert apply_updates(store, root, []) == root

    def test_batched_value_then_deeper_destroys_old_siblings(self):
        store = ObjectStore()
        root = apply_update(store, EMPTY_DIR_SHA, "a.d", vput(store, 1))
        # In one batch: bind a to a value, then write under it.
        root2 = apply_updates(store, root, [
            ("a", vput(store, 9)), ("a.c", vput(store, 2))])
        assert lookup(store, root2, "a.c") == 2
        with pytest.raises(KvsPathError):
            lookup(store, root2, "a.d")  # destroyed when a became a value

    def test_batched_matches_sequential(self):
        ops = [("a.b.c", 1), ("a.b.d", 2), ("x", 3), ("a.b.c", 4),
               ("a.b", 5), ("a.b.e", 6), ("x", None)]
        s1, s2 = ObjectStore(), ObjectStore()
        r1 = EMPTY_DIR_SHA
        for key, v in ops:
            r1 = apply_update(s1, r1, key,
                              vput(s1, v) if v is not None else None)
        r2 = apply_updates(
            s2, EMPTY_DIR_SHA,
            [(k, vput(s2, v) if v is not None else None) for k, v in ops])
        assert r1 == r2

    def test_large_batch_single_directory(self):
        store = ObjectStore()
        ops = [(f"kap.o{i}", vput(store, f"v{i}")) for i in range(1000)]
        root = apply_updates(store, EMPTY_DIR_SHA, ops)
        assert lookup(store, root, "kap.o567") == "v567"
        assert len(list_dir(store, root, "kap")) == 1000


# ---------------------------------------------------------------------------
# property-based: the hash tree behaves like a flat dict keyed by path
# ---------------------------------------------------------------------------

_name = st.sampled_from(["a", "b", "c", "d", "e"])
_key = st.lists(_name, min_size=1, max_size=3).map(".".join)
_op = st.tuples(_key, st.one_of(st.none(), st.integers(0, 99)))


def _model_apply(model: dict, key: str, value):
    """Reference semantics over a flat path->value dict."""
    parts = key.split(".")
    # Writing at `key` destroys anything at or under `key`, and any
    # value binding at a strict prefix of `key`.
    for existing in list(model):
        eparts = existing.split(".")
        if eparts[:len(parts)] == parts:
            del model[existing]
        elif parts[:len(eparts)] == eparts:
            del model[existing]
    if value is not None:
        model[key] = value


class TestHashTreeProperties:
    @given(ops=st.lists(_op, max_size=25))
    @settings(max_examples=200, deadline=None)
    def test_matches_flat_dict_model(self, ops):
        store = ObjectStore()
        root = EMPTY_DIR_SHA
        model: dict = {}
        for key, value in ops:
            sha = vput(store, value) if value is not None else None
            root = apply_update(store, root, key, sha)
            _model_apply(model, key, value)
        for key, value in model.items():
            assert lookup(store, root, key) == value

    @given(ops=st.lists(_op, max_size=25))
    @settings(max_examples=200, deadline=None)
    def test_batched_equals_sequential(self, ops):
        s1, s2 = ObjectStore(), ObjectStore()
        r1 = EMPTY_DIR_SHA
        for key, value in ops:
            sha = vput(s1, value) if value is not None else None
            r1 = apply_update(s1, r1, key, sha)
        r2 = apply_updates(
            s2, EMPTY_DIR_SHA,
            [(k, vput(s2, v) if v is not None else None) for k, v in ops])
        assert r1 == r2

    @given(ops=st.lists(_op, min_size=1, max_size=15), split=st.data())
    @settings(max_examples=100, deadline=None)
    def test_two_batches_equal_one(self, ops, split):
        cut = split.draw(st.integers(0, len(ops)))
        s1, s2 = ObjectStore(), ObjectStore()

        def shas(store, items):
            return [(k, vput(store, v) if v is not None else None)
                    for k, v in items]

        r1 = apply_updates(s1, EMPTY_DIR_SHA, shas(s1, ops))
        r2 = apply_updates(s2, EMPTY_DIR_SHA, shas(s2, ops[:cut]))
        r2 = apply_updates(s2, r2, shas(s2, ops[cut:]))
        assert r1 == r2

    @given(ops=st.lists(_op, max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_every_update_changes_root(self, ops):
        """Any (effective) update produces a new root reference — the
        property the paper highlights."""
        store = ObjectStore()
        root = EMPTY_DIR_SHA
        model: dict = {}
        for key, value in ops:
            before_model = dict(model)
            sha = vput(store, value) if value is not None else None
            new_root = apply_update(store, root, key, sha)
            _model_apply(model, key, value)
            if model != before_model:
                assert new_root != root
            root = new_root
