"""LogModule: hierarchical log reduction (Table I ``log``).

Covers the three behaviours the module docstring promises: severity
filtering at the forwarding boundary, batch-windowed upstream
reduction (one message per window, not per record), and the
fault-triggered circular-buffer dump that lands full debug context in
the root sink.
"""

import pytest

from repro import make_cluster
from repro.cmb import CommsSession, ModuleSpec, TreeTopology
from repro.cmb.modules import LogModule
from repro.cmb.modules.log import LEVELS


def make_session(n=7, **log_cfg):
    cluster = make_cluster(n)
    session = CommsSession(
        cluster, topology=TreeTopology(n),
        modules=[ModuleSpec(LogModule, **log_cfg)]).start()
    return cluster, session


def log_mod(session, rank):
    return session.module_at(rank, "log")


class TestForwardLevelFiltering:
    def test_below_threshold_stays_local(self):
        cluster, session = make_session(forward_level="warn")
        leaf = log_mod(session, 5)
        leaf.append("debug", "noisy detail")
        leaf.append("info", "routine")
        cluster.sim.run()
        root = log_mod(session, 0)
        assert root.sink == []
        # ... but both stay available in the local circular buffer.
        assert [r["text"] for r in leaf.circular] == \
            ["noisy detail", "routine"]

    def test_at_and_above_threshold_reach_root(self):
        cluster, session = make_session(forward_level="warn")
        leaf = log_mod(session, 5)
        leaf.append("warn", "at threshold")
        leaf.append("crit", "above threshold")
        cluster.sim.run()
        texts = [r["text"] for r in log_mod(session, 0).sink]
        assert texts == ["at threshold", "above threshold"]
        # Origin metadata survives the relay hops.
        assert all(r["rank"] == 5 for r in log_mod(session, 0).sink)

    def test_root_records_skip_the_wire(self):
        cluster, session = make_session()
        log_mod(session, 0).append("err", "root-local")
        assert [r["text"] for r in log_mod(session, 0).sink] == \
            ["root-local"]
        assert cluster.sim.event_count == 0  # no forwarding happened

    def test_unknown_forward_level_rejected(self):
        with pytest.raises(ValueError):
            make_session(forward_level="loud")

    def test_levels_total_order(self):
        assert (LEVELS["debug"] < LEVELS["info"] < LEVELS["warn"]
                < LEVELS["err"] < LEVELS["crit"])


class TestBatchWindowing:
    def count_log_requests(self, session):
        # Tree-plane sends only: each request is also tallied again as
        # a plane="local" dispatch at the receiving broker.
        return sum(v for b in session.brokers
                   for (mod, plane, kind), v in b.msg_counts.items()
                   if mod == "log" and kind == "request"
                   and plane == "tree")

    def test_burst_coalesces_into_one_message_per_hop(self):
        cluster, session = make_session(n=3, batch_window=1e-3)
        leaf = log_mod(session, 1)  # child of root on the binary tree
        for i in range(10):
            leaf.append("err", f"burst {i}")
        cluster.sim.run()
        sink = log_mod(session, 0).sink
        assert [r["text"] for r in sink] == [f"burst {i}"
                                             for i in range(10)]
        # The reduction: ten records, one log.append request.
        assert self.count_log_requests(session) == 1

    def test_records_after_window_start_ride_same_flush(self):
        cluster, session = make_session(n=3, batch_window=1e-3)
        sim = cluster.sim
        leaf = log_mod(session, 1)

        def emitter():
            leaf.append("err", "first")
            yield sim.timeout(5e-4)  # inside the open window
            leaf.append("err", "second")

        sim.spawn(emitter())
        sim.run()
        assert [r["text"] for r in log_mod(session, 0).sink] == \
            ["first", "second"]
        assert self.count_log_requests(session) == 1

    def test_separate_windows_flush_separately(self):
        cluster, session = make_session(n=3, batch_window=1e-3)
        sim = cluster.sim
        leaf = log_mod(session, 1)

        def emitter():
            leaf.append("err", "first")
            yield sim.timeout(0.05)  # well past the first flush
            leaf.append("err", "second")

        sim.spawn(emitter())
        sim.run()
        assert [r["text"] for r in log_mod(session, 0).sink] == \
            ["first", "second"]
        assert self.count_log_requests(session) == 2

    def test_multi_hop_rebatching(self):
        # Records from a grandchild are re-batched at the middle hop:
        # the root still sees every record exactly once, in order.
        cluster, session = make_session(n=7, batch_window=1e-3)
        grandchild = log_mod(session, 3)  # 3 -> 1 -> 0 on the binary tree
        for i in range(4):
            grandchild.append("err", f"deep {i}")
        cluster.sim.run()
        assert [r["text"] for r in log_mod(session, 0).sink] == \
            [f"deep {i}" for i in range(4)]


class TestFaultDump:
    def test_fault_dumps_circular_buffers_to_root(self):
        cluster, session = make_session(forward_level="crit")
        sim = cluster.sim
        leaf = log_mod(session, 6)
        # Debug context that would normally never leave the leaf.
        leaf.append("debug", "ctx 1")
        leaf.append("info", "ctx 2")
        sim.run()
        assert log_mod(session, 0).sink == []

        session.brokers[0].publish("fault", {"reason": "test"})
        sim.run()
        sink = log_mod(session, 0).sink
        texts = [r["text"] for r in sink if r["rank"] == 6]
        assert texts == ["ctx 1", "ctx 2"]
        # Dumped records are flagged so post-mortem tooling can tell
        # context apart from normally-forwarded traffic.
        assert all(r.get("dumped") for r in sink if r["rank"] == 6)

    def test_dump_preserves_capacity_bound(self):
        cluster, session = make_session(n=3, forward_level="crit",
                                        buffer_size=8)
        leaf = log_mod(session, 2)
        for i in range(20):
            leaf.append("debug", f"d{i}")
        assert len(leaf.circular) == 8
        session.brokers[0].publish("fault", {})
        cluster.sim.run()
        texts = [r["text"] for r in log_mod(session, 0).sink
                 if r["rank"] == 2]
        assert texts == [f"d{i}" for i in range(12, 20)]

    def test_dump_rpc_returns_local_buffer(self):
        cluster, session = make_session()
        sim = cluster.sim
        log_mod(session, 4).append("debug", "local only")

        def client():
            h = session.connect(4, collective=False)
            resp = yield h.rpc("log.dump", {})
            return resp["records"]

        records = sim.run_until_complete(sim.spawn(client()))
        assert [r["text"] for r in records] == ["local only"]

    def test_sink_rpc_reads_session_log(self):
        cluster, session = make_session()
        sim = cluster.sim
        log_mod(session, 3).append("err", "to the file")
        sim.run()

        def client():
            h = session.connect(0, collective=False)
            resp = yield h.rpc("log.sink", {})
            return resp["records"]

        records = sim.run_until_complete(sim.spawn(client()))
        assert [r["text"] for r in records] == ["to the file"]
