"""Coverage for remaining corners: ring routing around failures,
channel semantics under cancellation, PMI misuse, sharding + watch
interplay, and jsonutil details."""

import pytest

from repro import ModuleSpec, make_cluster, standard_session
from repro.cmb.api import RpcError
from repro.cmb.message import Message
from repro.cmb.module import CommsModule
from repro.cmb.session import CommsSession
from repro.cmb.topology import TreeTopology
from repro.jsonutil import canonical_dumps, sha1_of
from repro.kvs import KvsClient, KvsModule
from repro.kvs.sharding import ShardedKvsClient, sharded_kvs_specs
from repro.sim.cluster import make_cluster as mk


class EchoModule(CommsModule):
    name = "echo"

    def req_ping(self, msg: Message) -> None:
        self.respond(msg, {"rank": self.rank})


def run(cluster, gen):
    proc = cluster.sim.spawn(gen)
    return cluster.sim.run_until_complete(proc)


class TestJsonUtilCorners:
    def test_unicode_sizes_are_byte_counts(self):
        # 'é' is two UTF-8 bytes.
        assert len(canonical_dumps({"k": "é"})) == len(b'{"k":"\xc3\xa9"}')

    def test_nested_key_sorting_recursive(self):
        a = canonical_dumps({"z": {"b": 1, "a": 2}, "a": 0})
        b = canonical_dumps({"a": 0, "z": {"a": 2, "b": 1}})
        assert a == b

    def test_sha1_of_list_vs_tuple_payloads(self):
        # JSON has no tuples; lists define identity.
        assert sha1_of([1, 2]) == sha1_of([1, 2])
        assert sha1_of([1, 2]) != sha1_of([2, 1])

    def test_numbers_formatting_stable(self):
        assert canonical_dumps(1.5) == b"1.5"
        assert canonical_dumps(10) == b"10"


class TestRingRobustness:
    def test_ring_rpc_through_many_hops(self):
        cluster = mk(16, seed=91)
        session = CommsSession(cluster, topology=TreeTopology(16),
                               modules=[ModuleSpec(EchoModule)]).start()

        def client():
            out = []
            h = session.connect(0, collective=False)
            for dst in (1, 8, 15):
                resp = yield h.rpc_rank(dst, "echo.ping", {})
                out.append(resp["rank"])
            return out

        assert run(cluster, client()) == [1, 8, 15]

    def test_concurrent_ring_rpcs_interleave(self):
        cluster = mk(8, seed=92)
        session = CommsSession(cluster, topology=TreeTopology(8),
                               modules=[ModuleSpec(EchoModule)]).start()

        def client():
            h = session.connect(3, collective=False)
            evs = [h.rpc_rank(d, "echo.ping", {}) for d in range(8)]
            results = yield cluster.sim.all_of(evs)
            return [r["rank"] for r in results]

        assert run(cluster, client()) == list(range(8))


class TestChannelCancellation:
    def test_abandoned_getter_skipped(self):
        from repro.sim import Simulation
        sim = Simulation(seed=0)
        ch = sim.channel()
        # First getter abandoned before any put: the item must go to
        # the second getter, not vanish.
        g1 = ch.get()
        g2 = ch.get()
        g1.succeed("cancelled-elsewhere")  # simulates a raced waiter
        ch.put("item")
        sim.run()
        assert g2.value == "item"


class TestPmiMisuse:
    def test_get_before_fence_fails_cleanly(self):
        from repro.cmb.pmi import PmiClient
        cluster = make_cluster(2, seed=93)
        session = standard_session(cluster).start()

        def rank0():
            pmi = PmiClient(session.connect(0), "mj", 0, 2)
            yield pmi.put("card.0", "mine")
            # Peer's card not fenced in yet: get must error, not hang.
            with pytest.raises(RpcError):
                yield pmi.get("card.1")
            return "ok"

        assert run(cluster, rank0()) == "ok"


class TestShardingWatchAndDirs:
    def _session(self):
        cluster = mk(8, seed=94)
        session = CommsSession(cluster, topology=TreeTopology(8),
                               modules=sharded_kvs_specs(2, 8)).start()
        return cluster, session

    def test_get_dir_routes_to_owner(self):
        cluster, session = self._session()

        def flow():
            kvs = ShardedKvsClient(session.connect(3), 2)
            yield kvs.put("ns.a", 1)
            yield kvs.put("ns.b", 2)
            yield kvs.commit_shard(kvs.shard_of("ns.a"))
            return (yield kvs.get_dir("ns"))

        assert run(cluster, flow()) == ["a", "b"]

    def test_get_ref_roundtrip(self):
        cluster, session = self._session()

        def flow():
            kvs = ShardedKvsClient(session.connect(5), 2)
            yield kvs.put("refs.x", "val")
            yield kvs.commit_shard(kvs.shard_of("refs.x"))
            r = yield kvs.get_ref("refs.x")
            return r["ref"]

        assert len(run(cluster, flow())) == 40

    def test_unlink_on_shard(self):
        cluster, session = self._session()

        def flow():
            kvs = ShardedKvsClient(session.connect(2), 2)
            shard = kvs.shard_of("dead.key")
            yield kvs.put("dead.key", 1)
            yield kvs.commit_shard(shard)
            yield kvs.unlink("dead.key")
            yield kvs.commit_shard(shard)
            with pytest.raises(RpcError, match="not found"):
                yield kvs.get("dead.key")
            return "ok"

        assert run(cluster, flow()) == "ok"


class TestStandardSessionShape:
    def test_all_table1_modules_present(self):
        cluster = make_cluster(4, seed=95)
        session = standard_session(cluster, with_heartbeat=True,
                                   hb_max_epochs=1).start()
        mods = set(session.brokers[0].modules)
        assert {"kvs", "barrier", "log", "group", "resvc", "wexec",
                "mon", "hb", "live"} <= mods

    def test_heartbeat_off_by_default(self):
        cluster = make_cluster(2, seed=95)
        session = standard_session(cluster).start()
        assert "hb" not in session.brokers[0].modules
        cluster.sim.run()  # drains: no recurring timers
        assert cluster.sim.now < 1.0


class TestRpcTimeout:
    def test_lost_response_times_out(self):
        cluster = mk(15, seed=96)
        session = CommsSession(
            cluster, topology=TreeTopology(15),
            modules=[ModuleSpec(EchoModule, max_depth=0)]).start()

        def client():
            h = session.connect(14, collective=False)
            # Kill an interior node on the upstream path (14 -> 6 ->
            # 2 -> 0): the request dies en route, no response comes.
            session.fail_rank(2)
            with pytest.raises(RpcError, match="timeout"):
                yield h.rpc("echo.ping", {}, timeout=0.05)
            return cluster.sim.now

        t = run(cluster, client())
        assert t == pytest.approx(0.05, abs=0.01)

    def test_timeout_does_not_fire_on_success(self):
        cluster = mk(4, seed=97)
        session = CommsSession(cluster, topology=TreeTopology(4),
                               modules=[ModuleSpec(KvsModule)]).start()

        def client():
            h = session.connect(3, collective=False)
            resp = yield h.rpc("kvs.getversion", {}, timeout=5.0)
            return resp["version"]

        assert run(cluster, client()) == 0
        cluster.sim.run()
        # The armed timer was abandoned: the clock never reached 5 s.
        assert cluster.sim.now < 1.0

    def test_stale_response_after_timeout_is_dropped(self):
        cluster = mk(2, seed=98)
        session = CommsSession(cluster, topology=TreeTopology(2),
                               modules=[ModuleSpec(KvsModule)]).start()

        def client():
            h = session.connect(1, collective=False)
            # Absurdly short timeout: expires before the response's IPC
            # hop completes; the late response must not blow up.
            with pytest.raises(RpcError, match="timeout"):
                yield h.rpc("kvs.getversion", {}, timeout=1e-7)
            yield cluster.sim.timeout(0.01)
            # Handle still usable afterwards.
            resp = yield h.rpc("kvs.getversion", {})
            return resp["version"]

        assert run(cluster, client()) == 0
