"""Observability: causal spans, the metrics registry, and ``stats``.

The acceptance bar for the tracing layer:

- a ``kvs_fence`` on a 3-level, >=16-broker tree exports a *connected*
  span tree — every parent resolves, exactly one root per client call
  — with a computable critical path;
- the tree-reduced ``stats.aggregate`` matches an in-process merge of
  the per-broker registries (count-exact for counters and histogram
  counts, quantiles within one bucket);
- tracing disabled changes nothing: same event count, same message
  fingerprint as a run on a build where tracing never existed.
"""

import pytest

from repro import make_cluster, standard_session
from repro.cmb import TreeTopology
from repro.kvs import KvsClient
from repro.obs import (DEFAULT_TIME_LADDER, Histogram, MetricsRegistry,
                       SpanTracer, histogram_from_snapshot, log_ladder,
                       merge_snapshots)
from repro.stats import validate_stats, validate_trace


# ----------------------------------------------------------------------
# metrics model
# ----------------------------------------------------------------------
class TestHistogram:
    def test_quantiles_within_one_bucket(self):
        h = Histogram("h", bounds=log_ladder(1e-3, 10.0))
        samples = [0.002, 0.004, 0.008, 0.5, 1.0, 2.0, 4.0, 8.0]
        for s in samples:
            h.observe(s)
        # The bucket-interpolated estimate must land in the same
        # ladder bucket as the exact sample quantile.
        import bisect
        exact = sorted(samples)[len(samples) // 2 - 1]
        est = h.quantile(0.5)
        assert (bisect.bisect_left(h.bounds, est)
                - bisect.bisect_left(h.bounds, exact)) in (-1, 0, 1)
        assert h.count == len(samples)
        assert h.vmax == 8.0 and h.vmin == 0.002

    def test_merge_is_count_exact(self):
        a = Histogram("h", bounds=DEFAULT_TIME_LADDER)
        b = Histogram("h", bounds=DEFAULT_TIME_LADDER)
        for i in range(50):
            a.observe(1e-6 * (i + 1))
            b.observe(1e-3 * (i + 1))
        merged = Histogram("h", bounds=DEFAULT_TIME_LADDER)
        merged.merge(a)
        merged.merge(b)
        assert merged.count == 100
        assert merged.total == pytest.approx(a.total + b.total)
        assert merged.vmin == a.vmin and merged.vmax == b.vmax

    def test_merge_rejects_different_ladders(self):
        a = Histogram("h", bounds=log_ladder(1e-3, 1.0))
        b = Histogram("h", bounds=log_ladder(1e-3, 10.0))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_registry_snapshot_roundtrip(self):
        reg = MetricsRegistry(rank=3)
        reg.counter("c").inc(7)
        reg.gauge("g").set(2.5)
        h = reg.histogram("h")
        h.observe(0.5)
        snap = reg.snapshot()
        assert snap["labels"] == {"rank": 3}
        agg = merge_snapshots([snap])
        by_name = {m["name"]: m for m in agg["metrics"]}
        assert by_name["c"]["value"] == 7
        assert by_name["g"]["value"] == 2.5
        rebuilt = histogram_from_snapshot(by_name["h"])
        assert rebuilt.count == 1
        assert rebuilt.quantile(0.5) == pytest.approx(0.5, rel=1.0)


# ----------------------------------------------------------------------
# span tree of one fence
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def fence_run():
    """One fence among 8 clients on a 3-level, 21-broker tree."""
    cluster = make_cluster(21)
    session = standard_session(
        cluster, topology=TreeTopology(21, arity=4)).start()
    session.enable_tracing()
    sim = cluster.sim
    n_clients = 8

    def client(idx, rank):
        kvs = KvsClient(session.connect(rank))
        yield kvs.put(f"obs.k{idx}", idx)
        yield kvs.fence("obs.fence", n_clients)
        value = yield kvs.get(f"obs.k{(idx + 1) % n_clients}")
        assert value == (idx + 1) % n_clients

    procs = [sim.spawn(client(i, 5 + 2 * i)) for i in range(n_clients)]
    sim.run()
    assert all(p.ok for p in procs)
    session.stop()
    return session


class TestFenceSpanTree:
    def test_tree_is_connected(self, fence_run):
        tracer = fence_run.span_tracer
        assert tracer.validate() == []
        assert len(tracer.spans) > 50  # a real multi-hop trace

    def test_one_root_per_client_call(self, fence_run):
        for trace_id, spans in fence_run.span_tracer.traces().items():
            roots = [s for s in spans if s.parent_id is None]
            assert len(roots) == 1, f"trace {trace_id}"
            assert roots[0].cat == "client"

    def test_fence_trace_spans_multiple_ranks(self, fence_run):
        tracer = fence_run.span_tracer
        fence_traces = [spans for spans in tracer.traces().values()
                        if "rpc:kvs.fence" in {s.name for s in spans}]
        assert len(fence_traces) == 8
        deep = max(fence_traces, key=len)
        # Client -> leaf -> interior -> root: at least three distinct
        # ranks participate in one fence's causal tree.
        assert len({s.rank for s in deep}) >= 3

    def test_critical_path_reported(self, fence_run):
        tracer = fence_run.span_tracer
        tid = next(tid for tid, spans in tracer.traces().items()
                   if "rpc:kvs.fence" in {s.name for s in spans})
        path = tracer.critical_path(tid)
        assert path[0].parent_id is None
        for parent, child in zip(path, path[1:]):
            assert child.parent_id == parent.span_id
        report = tracer.critical_path_report(tid)
        assert "rpc:kvs.fence" in report

    def test_chrome_export_validates(self, fence_run):
        doc = fence_run.span_tracer.to_chrome_trace()
        assert validate_trace(doc) == []
        x_events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in x_events)
        # pid == rank so Perfetto groups spans per broker.
        assert {e["pid"] for e in x_events} <= set(range(21))


# ----------------------------------------------------------------------
# stats module: tree reduction == in-process merge
# ----------------------------------------------------------------------
class TestStatsAggregation:
    def test_rpc_aggregate_matches_in_process_merge(self):
        cluster = make_cluster(21)
        session = standard_session(
            cluster, topology=TreeTopology(21, arity=4)).start()
        sim = cluster.sim

        def workload(idx):
            kvs = KvsClient(session.connect(3 + idx))
            yield kvs.put(f"s.{idx}", idx)
            yield kvs.fence("s.fence", 6)
            yield kvs.get(f"s.{idx}")

        procs = [sim.spawn(workload(i)) for i in range(6)]
        sim.run()
        assert all(p.ok for p in procs)

        def query():
            h = session.connect(0, collective=False)
            return (yield h.rpc("stats.aggregate", {}))

        resp = sim.run_until_complete(sim.spawn(query()))
        assert resp["ranks"] == 21
        rpc_agg = {(m["name"], tuple(sorted(m["labels"].items()))): m
                   for m in resp["agg"]["metrics"]}

        # The in-process merge runs *after* the stats RPC itself, so
        # restrict the comparison to metrics the stats traffic cannot
        # touch: everything except broker_*/cmb_* message accounting.
        local_agg = session.metrics_aggregate()
        compared = 0
        for m in local_agg["metrics"]:
            if m["name"].startswith(("broker_", "cmb_", "rpc_")):
                continue
            key = (m["name"], tuple(sorted(m["labels"].items())))
            got = rpc_agg[key]
            if m["type"] == "histogram":
                assert got["count"] == m["count"], key
                assert got["buckets"] == m["buckets"], key
                ha, hb = (histogram_from_snapshot(got),
                          histogram_from_snapshot(m))
                for q in (0.5, 0.95, 0.99):
                    assert ha.quantile(q) == pytest.approx(hb.quantile(q))
            else:
                assert got["value"] == m["value"], key
            compared += 1
        assert compared >= 8
        session.stop()

    def test_interior_rank_aggregates_its_subtree(self):
        cluster = make_cluster(21)
        session = standard_session(
            cluster, topology=TreeTopology(21, arity=4)).start()
        sim = cluster.sim

        def query(rank):
            h = session.connect(rank, collective=False)
            return (yield h.rpc_rank(rank, "stats.aggregate", {}))

        # Rank 1's subtree on a 21-node arity-4 tree: itself + 4
        # children (5..8) + grandchildren — sized by the topology.
        topo = session.topology
        def subtree(r):
            return 1 + sum(subtree(c) for c in topo.children(r))
        resp = sim.run_until_complete(sim.spawn(query(1)))
        assert resp["ranks"] == subtree(1)
        session.stop()

    def test_stats_get_snapshot_is_valid(self):
        cluster = make_cluster(5)
        session = standard_session(cluster).start()
        sim = cluster.sim

        def query():
            h = session.connect(2, collective=False)
            return (yield h.rpc_rank(2, "stats.get", {}))

        resp = sim.run_until_complete(sim.spawn(query()))
        assert resp["rank"] == 2
        doc = {"meta": {}, "aggregate": merge_snapshots([resp["stats"]])}
        assert validate_stats(doc) == []
        session.stop()


# ----------------------------------------------------------------------
# tracing off == tracing absent
# ----------------------------------------------------------------------
def _fingerprint_run(tracing):
    cluster = make_cluster(9, seed=4)
    session = standard_session(cluster).start()
    if tracing:
        session.enable_tracing()
    sim = cluster.sim

    def client(idx):
        kvs = KvsClient(session.connect(idx + 1))
        yield kvs.put(f"f.{idx}", [idx])
        yield kvs.fence("f.fence", 4)
        yield kvs.get(f"f.{(idx + 1) % 4}")

    procs = [sim.spawn(client(i)) for i in range(4)]
    sim.run()
    assert all(p.ok for p in procs)
    counts = session.message_counts()
    bytes_sent = cluster.network.total_bytes_sent()
    session.stop()
    return sim.event_count, sim.now, bytes_sent, counts


class TestTracingIsFree:
    def test_off_run_identical_to_absent(self):
        # Tracing is pure bookkeeping: no events, no RNG draws, no
        # payload bytes.  Even *enabled* it cannot perturb the
        # simulation, so both runs must be event-for-event identical.
        assert _fingerprint_run(False) == _fingerprint_run(True)

    def test_span_tuple_rides_outside_counted_bytes(self):
        from repro.cmb.message import Message, MessageType
        a = Message(topic="kvs.get", mtype=MessageType.REQUEST,
                    payload={"k": 1})
        b = Message(topic="kvs.get", mtype=MessageType.REQUEST,
                    payload={"k": 1}, span=(12, 34))
        assert a.size() == b.size()


# ----------------------------------------------------------------------
# mon stale-pending regression (satellite fix)
# ----------------------------------------------------------------------
class TestMonPendingHygiene:
    def test_child_death_completes_waiting_epochs(self):
        cluster = make_cluster(7, seed=9)
        session = standard_session(cluster, with_heartbeat=True,
                                   hb_period=0.05, hb_max_epochs=40)
        session.start()
        sim = cluster.sim

        def activate():
            h = session.connect(0, collective=False)
            yield h.rpc("mon.activate", {"name": "stats.requests",
                                         "op": "sum"})

        sim.run_until_complete(sim.spawn(activate()))
        sim.run(until=0.4)
        session.fail_rank(2)  # interior: root waits on its aggregate
        sim.run()
        root_mon = session.module_at(0, "mon")
        # The root keeps producing results after the kill...
        epochs = [e for (_n, e) in root_mon.results]
        assert max(epochs) * 0.05 > 0.5
        # ...and no live broker accumulates unbounded pending slots.
        for rank in range(7):
            if not session.brokers[rank].alive:
                continue
            mon = session.module_at(rank, "mon")
            for metric in mon.active.values():
                assert len(metric.pending) <= mon.STALE_EPOCHS
        session.stop()

    def test_stale_epochs_are_counted(self):
        cluster = make_cluster(7, seed=9)
        session = standard_session(cluster, with_heartbeat=True,
                                   hb_period=0.05, hb_max_epochs=60)
        session.start()
        sim = cluster.sim

        def activate():
            h = session.connect(0, collective=False)
            yield h.rpc("mon.activate", {"name": "stats.requests",
                                         "op": "sum"})

        sim.run_until_complete(sim.spawn(activate()))
        sim.run(until=0.3)
        # Kill a *leaf*: its parent's pending slots can never fill by
        # recheck (expected drops only when live.down propagates), so
        # the pulse-driven GC has to reap them.
        session.fail_rank(5)
        sim.run()
        agg = session.metrics_aggregate()
        by_name = {m["name"]: m for m in agg["metrics"]}
        dropped = by_name.get("mon_stale_epochs_dropped_total")
        for rank in range(7):
            if not session.brokers[rank].alive:
                continue
            mon = session.module_at(rank, "mon")
            for metric in mon.active.values():
                assert len(metric.pending) <= mon.STALE_EPOCHS
        assert dropped is not None
        session.stop()
