"""Payload interning and per-link dedup correctness.

Two independent mechanisms, two contracts:

- **Interning** (:mod:`repro.jsonutil` fragment table, on by default)
  memoizes canonical sizes/digests of shared payload fragments.  It is
  host-side only, so it must be *event-invisible*: the same-seed
  SAN105 fingerprint must be identical with interning on and off, and
  every memoized size must equal the exact canonical encoding length.
- **Per-link dedup** (``KvsModule(dedup=True)``, off by default) sends
  each distinct object across a tree edge once and sha references
  (``orefs``) afterward.  The per-link filter is a pure optimization:
  a receiver missing a referenced object rejects retryably and the
  sender re-sends in full, so no reroute/retransmit/failover can lose
  an object to a stale filter.
"""

import pytest

from repro.jsonutil import (canonical_dumps, canonical_size,
                            clear_intern_table, digest_and_size,
                            intern_fragment, intern_stats, interned_size,
                            set_interning)
from repro.cmb.modules import BarrierModule
from repro.cmb.session import CommsSession, ModuleSpec
from repro.cmb.topology import TreeTopology
from repro.kap import KapConfig, run_kap
from repro.kvs import KvsClient, KvsModule
from repro.sim.cluster import make_cluster

from .chaos import run_chaos_workload

GOLDEN_KAP_256 = "52654cf1c7ec6e222120c2123f5d6763dbdc9834"


@pytest.fixture(autouse=True)
def _intern_state():
    """Each test starts from an empty table and leaves interning on."""
    clear_intern_table()
    yield
    set_interning(True)
    clear_intern_table()


# -- canonical-size exactness over interned fragments -------------------

FRAGMENTS = [
    {},
    [],
    {"k": 1},
    {"ops": [["a.b", "0" * 40], ["c", None]]},
    [["x", None]] * 7,
    {"nested": {"dirs": {"a": 1, "b": [1, 2, {"c": "d"}]}}},
    {"unicode": "héllo ✓ world", "f": 1.25, "neg": -17},
    [{"sha": f"{i:040x}"} for i in range(13)],
    {"bools": [True, False, None], "empty": {"d": {}}},
]


@pytest.mark.parametrize("idx", range(len(FRAGMENTS)))
def test_interned_size_is_exact(idx):
    """The memoized size must equal the exact canonical byte length —
    before interning, at intern time, and on every probe after."""
    obj = FRAGMENTS[idx]
    want = len(canonical_dumps(obj))
    assert canonical_size(obj) == want
    intern_fragment(obj)
    assert interned_size(obj) == want
    # The memo hit path must serve the same exact number.
    assert canonical_size(obj) == want
    sha, size = digest_and_size(obj)
    assert size == want


def test_intern_probe_is_identity_keyed():
    """An equal-but-distinct object must not hit another's entry (the
    table is id-keyed; strong refs prevent id reuse aliasing)."""
    a = {"ops": [["k", None]]}
    b = {"ops": [["k", None]]}
    intern_fragment(a)
    assert interned_size(a) == canonical_size(b)
    assert interned_size(b) is None


def test_intern_explicit_size_is_trusted_and_served():
    """``intern_fragment(obj, size)`` callers own the exactness
    contract: the fence path computes sizes incrementally, and this is
    the battery proving the incremental arithmetic stays exact."""
    ops = [["key%d" % i, "a" * 40] for i in range(9)]
    # The fence's incremental form: 1 + n (brackets + commas) + sum of
    # element sizes.
    total = 1 + len(ops) + sum(canonical_size(op) for op in ops)
    assert total == len(canonical_dumps(ops))
    intern_fragment(ops, total)
    assert interned_size(ops) == total
    assert canonical_size(ops) == total


def test_intern_disable_is_a_kill_switch():
    obj = {"a": [1, 2, 3]}
    intern_fragment(obj)
    set_interning(False)
    assert interned_size(obj) is None          # table cleared
    intern_fragment(obj)                        # no-op while disabled
    assert interned_size(obj) is None
    assert canonical_size(obj) == len(canonical_dumps(obj))
    set_interning(True)
    intern_fragment(obj)
    assert interned_size(obj) is not None


def test_intern_table_is_bounded():
    """The table LRU-evicts: interning far more fragments than the cap
    keeps the size bounded and the newest entries resident."""
    keep = [{"i": i} for i in range(9000)]
    for obj in keep:
        intern_fragment(obj)
    stats = intern_stats()
    assert stats["entries"] <= 8192
    assert interned_size(keep[-1]) is not None
    assert interned_size(keep[0]) is None      # evicted


# -- event-invisibility of interning ------------------------------------

def test_fingerprint_identical_with_interning_off():
    """Interning is host-side memoization only: disabling it must not
    move a single event (golden SAN105 fingerprint both ways)."""
    cfg = dict(nnodes=16, procs_per_node=16, value_size=64, seed=1)
    on = run_kap(KapConfig(**cfg), sanitize=True)
    assert on.event_fingerprint == GOLDEN_KAP_256
    set_interning(False)
    try:
        off = run_kap(KapConfig(**cfg), sanitize=True)
    finally:
        set_interning(True)
    assert off.event_fingerprint == GOLDEN_KAP_256
    assert off.events == on.events
    assert off.bytes_sent == on.bytes_sent
    assert off.total_time == on.total_time


# -- dedup wire mode ----------------------------------------------------

def test_dedup_deterministic_and_byte_reducing():
    """Dedup mode is same-seed deterministic and cuts tree bytes at
    paper scale (the win grows with producer count; at 64 nodes the
    directory fault-in traffic already dominates legacy)."""
    cfg = dict(nnodes=64, procs_per_node=16, value_size=64, seed=1)
    legacy = run_kap(KapConfig(**cfg))
    a = run_kap(KapConfig(**cfg, dedup=True), sanitize=True)
    b = run_kap(KapConfig(**cfg, dedup=True), sanitize=True)
    assert a.sanitizer_findings == []
    assert a.event_fingerprint == b.event_fingerprint
    assert a.events == b.events
    assert a.bytes_sent == b.bytes_sent
    assert a.bytes_sent * 1.5 < legacy.bytes_sent
    assert a.interned_bytes_saved > legacy.bytes_sent - a.bytes_sent


def _dedup_session(n=8, seed=5):
    cluster = make_cluster(n, seed=seed)
    session = CommsSession(
        cluster, topology=TreeTopology(n, arity=2),
        modules=[ModuleSpec(KvsModule, dedup=True),
                 ModuleSpec(BarrierModule)]).start()
    return cluster, session


def test_oref_miss_rejects_and_resends_full():
    """A stale per-link filter (receiver lacks a referenced object)
    must trigger the reject/re-send-full recovery, and the commit must
    still land the right value."""
    cluster, session = _dedup_session()
    mod = session.module_at(7, "kvs")
    rejected = {"n": 0}

    def counting_resolve_at(m, msg):
        out = KvsModule._resolve_orefs(m, msg)
        if out is None:
            rejected["n"] += 1
        return out
    # Count rejections at the receiving hops on rank 7's uplink path.
    for rank in (3, 1, 0):
        m = session.module_at(rank, "kvs")
        m._resolve_orefs = (lambda msg, _m=m: counting_resolve_at(_m, msg))

    def writer():
        kvs = KvsClient(session.connect(7))
        yield kvs.put("a", "first")
        yield kvs.commit()
        yield kvs.put("b", "second")
        # Poison rank 7's uplink filter with the not-yet-sent dirty
        # objects: the flush will carry orefs the parent has never
        # seen, forcing the recovery path.
        peer = mod._uplink_peer()
        for dirty in mod._dirty.values():
            mod._link_sent.setdefault(peer, set()).update(dirty.objs)
        yield kvs.commit()
        return (yield kvs.get("b"))

    proc = cluster.sim.spawn(writer())
    cluster.sim.run()
    assert proc.ok, f"writer failed: {proc._exc!r}"
    assert proc.value == "second"
    assert rejected["n"] >= 1, "stale filter never tripped the reject"

    def reader():
        kvs = KvsClient(session.connect(2))
        return (yield kvs.get("b"))

    rproc = cluster.sim.spawn(reader())
    cluster.sim.run()
    assert rproc.ok and rproc.value == "second"


def test_dedup_chaos_drop_dup_converges():
    """Lossy + duplicating fabric with dedup on: retransmits and
    reroutes must never let the per-link filter suppress an object the
    receiver lacks — every acked write stays readable, sanitizers
    clean."""
    rep = run_chaos_workload(n_nodes=15, n_clients=8, drop_rate=0.01,
                             dup_rate=0.02, n_iters=2, run_until=30.0,
                             sanitize=True, kvs_dedup=True)
    assert rep.converged, rep.errors
    assert rep.reads_failed == 0
    assert rep.sanitizer_findings == []
    assert rep.reads_verified == 8 * 3


def test_dedup_root_failover_mid_fence_converges():
    """Root master killed mid-fence with dedup on: the promotion
    clears the master-ward filters, the replayed fence re-sends its
    objects, and no acked write is lost."""
    rep = run_chaos_workload(n_nodes=15, n_clients=8, drop_rate=0.01,
                             seed=5, fault_seed=13,
                             kill_ranks=(0,), kill_at=0.12,
                             hb_period=0.05, n_iters=2, iter_gap=0.1,
                             timeout=0.5, retries=10, run_until=40.0,
                             kvs_replicas=(1, 2), sanitize=True,
                             kvs_dedup=True)
    assert rep.converged, rep.errors
    assert rep.reads_failed == 0
    assert rep.hung_waiters == 0
    assert rep.sanitizer_findings == []
    assert rep.reads_verified == 8 * 3
