"""Hot-path optimizations must be invisible to the simulation.

This PR's performance work (memoized canonical sizes, keyed digest
caches, lazy event names, the inlined kernel run loop, ``_cb1``
single-waiter dispatch, heap compaction) is licensed by one contract:
a same-seed run produces the *byte-identical* event stream — and
therefore identical SAN105 replay fingerprints, event counts, wire
bytes and simulated latencies — as the unoptimized code.

The golden values below were captured on the pre-optimization tree
(commit 82f684f) with the exact configurations used here.  If any
optimization perturbs scheduling order, message sizes, or float
arithmetic, these pins catch it; they are the regression gate the
DESIGN.md "Performance engineering" section points at.
"""

import pytest

from repro.kap import KapConfig, run_kap

from .chaos import run_chaos_workload

#: (config kwargs, goldens from the pre-optimization tree).
GOLDEN_KAP = {
    "small": (
        dict(nnodes=8, procs_per_node=2, value_size=64, nputs=2,
             naccess=2, seed=3),
        dict(fingerprint="4b28c8bd1454f43c667dacec7bc8acd7e2238c0f",
             events=791, bytes_sent=36784,
             producer=1.609399999999997e-05,
             sync=3.56660833333333e-05,
             consumer=7.34134999999998e-05,
             total_time=0.0003038966874999998),
    ),
    "medium": (
        dict(nnodes=16, procs_per_node=4, value_size=512, dir_width=16,
             seed=5),
        dict(fingerprint="65e419734171c3860d9c717f49eaef4475f6da18",
             events=1911, bytes_sent=173375,
             producer=8.122166666666689e-06,
             sync=5.455387499999964e-05,
             consumer=5.73521458333333e-05,
             total_time=0.00035949131249999965),
    ),
    "large": (
        dict(nnodes=32, procs_per_node=4, value_size=256,
             redundant_values=True, sync="commit_wait", seed=7),
        dict(fingerprint="5a30713309bd78e3112c99bb725debbc1b7a1ae6",
             events=13019, bytes_sent=979286,
             producer=8.07933333333335e-06,
             sync=0.0007939087708333497,
             consumer=3.718991666666681e-05,
             total_time=0.0011213096458333493),
    ),
}

GOLDEN_CHAOS = dict(
    fingerprint="aab95fab6805f380726e1e083f4889f731cb2654",
    converged=True, reads_verified=16,
    makespan=0.00015684556249999991)


@pytest.mark.parametrize("name", sorted(GOLDEN_KAP))
def test_kap_matches_preoptimization_goldens(name):
    cfg_kw, want = GOLDEN_KAP[name]
    res = run_kap(KapConfig(**cfg_kw), sanitize=True)
    assert res.sanitizer_findings == []
    assert res.event_fingerprint == want["fingerprint"]
    assert res.events == want["events"]
    assert res.bytes_sent == want["bytes_sent"]
    # Latencies are simulated-time floats: the same event stream must
    # reproduce them bit for bit, so exact equality is the point.
    assert res.max_producer_latency == want["producer"]
    assert res.max_sync_latency == want["sync"]
    assert res.max_consumer_latency == want["consumer"]
    assert res.total_time == want["total_time"]


def test_chaos_matches_preoptimization_goldens():
    rep = run_chaos_workload(n_nodes=15, n_clients=8, drop_rate=0.01,
                             n_iters=1, sanitize=True)
    assert rep.sanitizer_findings == []
    assert rep.event_fingerprint == GOLDEN_CHAOS["fingerprint"]
    assert rep.converged is GOLDEN_CHAOS["converged"]
    assert rep.reads_verified == GOLDEN_CHAOS["reads_verified"]
    assert rep.makespan == GOLDEN_CHAOS["makespan"]


def test_same_seed_runs_are_identical():
    """Replay determinism independent of the pinned goldens: two
    fresh same-seed runs in one process (so every memo cache is warm
    the second time) must still fingerprint identically."""
    cfg = dict(nnodes=8, procs_per_node=4, value_size=128, seed=11)
    a = run_kap(KapConfig(**cfg), sanitize=True)
    b = run_kap(KapConfig(**cfg), sanitize=True)
    assert a.event_fingerprint == b.event_fingerprint
    assert a.events == b.events
    assert a.bytes_sent == b.bytes_sent
    assert a.max_producer_latency == b.max_producer_latency
    assert a.max_sync_latency == b.max_sync_latency
    assert a.total_time == b.total_time
