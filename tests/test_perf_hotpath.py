"""Unit tests for the hot-path caching machinery.

The perf work (DESIGN.md "Performance engineering") replaces repeated
serialization with arithmetic sizing and keyed memoization.  These
tests pin the exactness contracts each cache relies on:

- :func:`canonical_size` equals ``len(canonical_dumps(obj))`` for the
  payload shapes the system produces *and* for the escaping edge cases
  it must fall back on;
- the keyed digest cache returns the same ``(sha, size)`` a fresh
  serialization would;
- :class:`ObjectStore` size caching matches re-serialization;
- the compositional ``objs``-payload sizing identity used by the KVS
  fence path is exact;
- :meth:`Message.copy` / :meth:`Message.make_response` slot-level fast
  paths preserve field semantics and size-cache invalidation.
"""

import hashlib

import pytest

from repro.cmb.message import HEADER_BYTES, Message, MessageType, split_topic
from repro.jsonutil import (canonical_dumps, canonical_size,
                            digest_and_size, sha1_of)
from repro.kvs.store import ObjectStore, make_dir_obj, make_val_obj


class TestCanonicalSizeExactness:
    CASES = [
        {},
        [],
        (),
        None,
        True,
        False,
        0,
        -17,
        10**40,
        0.5,
        -0.0,
        1e300,
        1.3e-6,
        "",
        "plain",
        'quote " inside',
        "back\\slash",
        "control\x00\x1fchars",
        "unicode: é中文\U0001f600",
        {"k": "v", "a": [1, 2.5, None, True], "nested": {"x": "y"}},
        {"ékey": {"deep": ["\t", "\n", "ok"]}},
        {"objs": {"a" * 40: {"v": "x" * 100}}, "rootdir": "b" * 40,
         "version": 7},
        ["mixed", 1, 2.0, {"d": []}, [[]], False, None],
        {"empty_str_key": "", "": "empty key"},
        # Non-arithmetic shapes must fall back to real serialization.
        float("inf"),
        float("-inf"),
        {1: "non-string key"},
        {"frozen": (1, (2, 3))},
    ]

    @pytest.mark.parametrize("obj", CASES, ids=repr)
    def test_matches_real_encoding(self, obj):
        assert canonical_size(obj) == len(canonical_dumps(obj))

    def test_nan_falls_back(self):
        nan = float("nan")
        assert canonical_size(nan) == len(canonical_dumps(nan))

    def test_memoized_second_call_identical(self):
        obj = {"topic": "kvs.put", "key": "dir.a.b", "value": "x" * 33}
        first = canonical_size(obj)
        assert canonical_size(obj) == first == len(canonical_dumps(obj))


class TestDigestCache:
    def test_matches_direct_hash(self):
        obj = {"v": ["some", "value", 42]}
        data = canonical_dumps(obj)
        assert digest_and_size(obj) == (
            hashlib.sha1(data).hexdigest(), len(data))

    def test_keyed_hit_returns_same_result(self):
        obj = {"v": "keyed-digest-test-value"}
        key = ("test", "keyed-digest-test-value")
        first = digest_and_size(obj, key=key)
        assert digest_and_size(obj, key=key) == first
        assert first == digest_and_size(obj)  # uncached ground truth
        assert sha1_of(obj, key=key) == first[0]


class TestObjectStoreSizes:
    def test_put_obj_caches_exact_size(self):
        st = ObjectStore()
        obj = make_val_obj("hello" * 10)
        sha = st.put_obj(obj)
        assert sha == sha1_of(obj)
        assert st.size_of(sha) == canonical_size(obj)

    def test_put_with_sha_seeded_size(self):
        st = ObjectStore()
        obj = make_val_obj([1, 2, 3])
        sha = sha1_of(obj)
        st.put_with_sha(sha, obj, size=canonical_size(obj))
        assert st.size_of(sha) == canonical_size(obj)

    def test_put_with_sha_lazy_size(self):
        st = ObjectStore()
        obj = make_dir_obj({"a": "0" * 40, "b": "1" * 40})
        sha = sha1_of(obj)
        st.put_with_sha(sha, obj)
        assert st.size_of(sha) == len(canonical_dumps(obj))

    def test_size_of_missing_is_none(self):
        st = ObjectStore()
        assert st.size_of("f" * 40) is None

    def test_discard_clears_size(self):
        st = ObjectStore()
        sha = st.put_obj(make_val_obj("bye"))
        st.discard(sha)
        assert st.get(sha) is None
        assert st.size_of(sha) is None


class TestObjsPayloadFramingIdentity:
    """The fence path sizes ``{..., "objs": {sha: obj}}`` payloads as
    ``canonical_size(frame with objs={}) + sum(43 + size(obj)) +
    (n - 1)`` — per entry a quoted 40-hex sha (42), a colon (1), and
    one inter-entry comma.  Canonical-JSON sizes are additive, so the
    identity must be exact for any object mix."""

    @pytest.mark.parametrize("nobjs", [1, 2, 5])
    def test_identity(self, nobjs):
        objs = {}
        for i in range(nobjs):
            obj = (make_val_obj("v" * (i + 1) * 7) if i % 2 == 0
                   else make_dir_obj({f"e{i}": "a" * 40}))
            objs[sha1_of(obj)] = obj
        payload = {"rootdir": "c" * 40, "version": 12, "objs": objs}
        composed = canonical_size({**payload, "objs": {}})
        for sha, obj in objs.items():
            composed += 43 + canonical_size(obj)
        composed += len(objs) - 1
        assert composed == canonical_size(payload)
        assert composed == len(canonical_dumps(payload))


class TestMessageFastPaths:
    def test_copy_preserves_fields_and_size_cache(self):
        msg = Message(topic="kvs.put", payload={"key": "a", "value": 1},
                      src_rank=3)
        size = msg.size()
        dup = msg.copy(hops=msg.hops + 1)
        assert dup.topic == msg.topic
        assert dup.payload is msg.payload
        assert dup.msgid == msg.msgid
        assert dup.hops == msg.hops + 1
        assert dup._size_cache == size  # survives a payload-less copy
        assert dup.size() == size

    def test_copy_with_payload_invalidates_size_cache(self):
        msg = Message(topic="kvs.put", payload={"key": "a"})
        msg.size()
        dup = msg.copy(payload={"key": "a", "value": "x" * 100})
        assert dup._size_cache is None
        assert dup.size() == HEADER_BYTES + canonical_size(dup.payload)

    def test_copy_does_not_carry_delivery_bookkeeping(self):
        msg = Message(topic="kvs.put")
        msg._source = object()
        msg._obs_t0 = 1.5
        dup = msg.copy()
        assert dup._source is None
        assert dup._obs_t0 is None

    def test_make_response_correlates_and_sizes_own_payload(self):
        req = Message(topic="kvs.get", payload={"key": "x"}, src_rank=5)
        req.size()
        resp = req.make_response({"value": "y" * 64})
        assert resp.mtype is MessageType.RESPONSE
        assert resp.msgid == req.msgid
        assert resp.error is None and resp.errnum is None
        assert resp.size() == HEADER_BYTES + canonical_size(resp.payload)

    def test_split_topic_cached_value_is_stable(self):
        assert split_topic("kvs.fence.seq") == ("kvs", "fence.seq")
        assert split_topic("kvs.fence.seq") is split_topic("kvs.fence.seq")
        assert split_topic("modctl") == ("modctl", "")
