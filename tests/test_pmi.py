"""Tests for the PMI-over-CMB bootstrap library (MPI wire-up)."""

import pytest

from repro import make_cluster, standard_session
from repro.cmb.pmi import PmiClient


def wireup_job(session, jobid, size, nodes):
    """Spawn `size` simulated MPI ranks doing the canonical exchange."""
    cluster_sim = session.sim
    cards = {}

    def mpi_rank(rank):
        handle = session.connect(rank % nodes)
        pmi = PmiClient(handle, jobid, rank, size)
        my_card = f"ib://node{rank % nodes}:{5000 + rank}"
        got = yield from pmi.exchange_business_cards(my_card)
        cards[rank] = got

    procs = [cluster_sim.spawn(mpi_rank(r)) for r in range(size)]
    cluster_sim.run()
    assert all(p.ok for p in procs)
    return cards


class TestPmiBootstrap:
    def test_full_exchange(self):
        cluster = make_cluster(4, seed=11)
        session = standard_session(cluster).start()
        cards = wireup_job(session, "mpi1", 8, 4)
        expected = [f"ib://node{r % 4}:{5000 + r}" for r in range(8)]
        for rank in range(8):
            assert cards[rank] == expected

    def test_two_jobs_namespaces_isolated(self):
        cluster = make_cluster(4, seed=11)
        session = standard_session(cluster).start()
        sim = cluster.sim
        results = {}

        def rank_of(jobid, rank, size):
            handle = session.connect(rank % 4)
            pmi = PmiClient(handle, jobid, rank, size)
            got = yield from pmi.exchange_business_cards(f"{jobid}-{rank}")
            results[(jobid, rank)] = got

        procs = [sim.spawn(rank_of("jA", r, 4)) for r in range(4)]
        procs += [sim.spawn(rank_of("jB", r, 4)) for r in range(4)]
        sim.run()
        assert all(p.ok for p in procs)
        assert results[("jA", 0)] == [f"jA-{r}" for r in range(4)]
        assert results[("jB", 3)] == [f"jB-{r}" for r in range(4)]

    def test_pure_barrier(self):
        cluster = make_cluster(2, seed=11)
        session = standard_session(cluster).start()
        sim = cluster.sim
        release = []

        def rank_of(rank):
            handle = session.connect(rank % 2)
            pmi = PmiClient(handle, "jb", rank, 4)
            yield sim.timeout(rank * 1e-4)
            yield pmi.barrier()
            release.append(sim.now)

        procs = [sim.spawn(rank_of(r)) for r in range(4)]
        sim.run()
        assert all(p.ok for p in procs)
        assert min(release) >= 3e-4  # nobody exits before the last entry

    def test_repeated_fences_advance(self):
        cluster = make_cluster(2, seed=11)
        session = standard_session(cluster).start()
        sim = cluster.sim

        def rank_of(rank):
            handle = session.connect(rank % 2)
            pmi = PmiClient(handle, "jf", rank, 2)
            for round_i in range(3):
                yield pmi.put(f"r{round_i}.{rank}", round_i * 10 + rank)
                yield pmi.fence()
                peer = 1 - rank
                value = yield pmi.get(f"r{round_i}.{peer}")
                assert value == round_i * 10 + peer
            return "ok"

        procs = [sim.spawn(rank_of(r)) for r in range(2)]
        sim.run()
        assert all(p.ok and p.value == "ok" for p in procs)

    def test_kvsname_convention(self):
        cluster = make_cluster(1, seed=0)
        session = standard_session(cluster).start()
        handle = session.connect(0)
        pmi = PmiClient(handle, "lwj42", 0, 1)
        assert pmi.kvsname == "pmi.lwj42"
