"""Post-mortem bundles + doctor: seeded pathologies get root-caused.

Each test seeds one known failure mode with the chaos harness (or a
hand-built stuck session), captures a post-mortem bundle, and asserts
``repro.obs.doctor`` names the right pathology with usable evidence —
the acceptance bar for the flight-recorder tentpole.
"""

import json

import pytest

from repro import make_cluster, standard_session
from repro.kvs import KvsClient
from repro.obs.doctor import Doctor, diagnose, main as doctor_main
from repro.obs.postmortem import (BUNDLE_VERSION, capture_bundle,
                                  load_bundle, write_bundle)

from .chaos import run_chaos_workload, run_job_chaos_workload


# ----------------------------------------------------------------------
# bundle capture / round trip
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def clean_bundle_path(tmp_path_factory):
    """Fault-free chaos run with an explicit postmortem_out: the
    caller asked, so a bundle is written even with nothing wrong."""
    path = str(tmp_path_factory.mktemp("pm") / "clean.json")
    report = run_chaos_workload(n_nodes=7, n_clients=4, drop_rate=0.0,
                                n_iters=1, postmortem_out=path)
    assert report.converged
    assert report.postmortem_path == path
    return path


def test_bundle_round_trip_structure(clean_bundle_path):
    bundle = load_bundle(clean_bundle_path)
    meta = bundle["meta"]
    assert meta["bundle_version"] == BUNDLE_VERSION
    assert meta["kind"] == "chaos"
    assert meta["reason"] == "requested by caller"
    assert meta["size"] == 7
    assert len(bundle["brokers"]) == 7
    for entry in bundle["brokers"]:
        assert entry["alive"]
        assert entry["flight"]["appended"] > 0
        assert isinstance(entry["pending"], list)
        assert "metrics" in entry
        assert "kvs" in entry
    assert bundle["terminal_errors"] == []
    assert "retry_stats" in bundle and "plane_bytes" in bundle


def test_bundle_version_gate(tmp_path, clean_bundle_path):
    bundle = load_bundle(clean_bundle_path)
    bundle["meta"]["bundle_version"] = 99
    bad = str(tmp_path / "bad.json")
    write_bundle(bundle, bad)
    with pytest.raises(ValueError, match="bundle version"):
        load_bundle(bad)


def test_clean_run_diagnoses_clean(clean_bundle_path):
    diag = diagnose([clean_bundle_path])
    errors = [f for f in diag["findings"] if f["severity"] == "error"]
    assert errors == []
    assert diag["dead_ranks"] == []
    assert diag["n_records"] > 0


# ----------------------------------------------------------------------
# pathology 1: respawn-exhausted (job declared lost)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def lost_job_bundle(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("pm") / "lost-job.json")
    report = run_job_chaos_workload(n_nodes=15, nprocs=8,
                                    max_restarts=0, kill_ranks=(1,),
                                    task_work=1.0, postmortem_out=path)
    assert report.lost
    assert report.postmortem_path == path
    return path


def test_doctor_root_causes_respawn_exhausted(lost_job_bundle):
    diag = diagnose([lost_job_bundle])
    found = {f["pathology"]: f for f in diag["findings"]}
    assert "respawn-exhausted" in found
    f = found["respawn-exhausted"]
    assert f["severity"] == "error"
    assert "lwj-chaos" in f["summary"]
    assert any("max_restarts=0" in ev for ev in f["evidence"])
    # The job's reconstructed timeline made it into the report.
    assert any(key.startswith("job:") for key in diag["timelines"])


def test_doctor_cli_expect(lost_job_bundle, capsys):
    assert doctor_main([lost_job_bundle,
                        "--expect", "respawn-exhausted"]) == 0
    out = capsys.readouterr().out
    assert "post-mortem doctor" in out
    assert "respawn-exhausted" in out
    # A pathology that was NOT found exits nonzero.
    assert doctor_main([lost_job_bundle,
                        "--expect", "double-promote"]) == 1


def test_doctor_cli_json(lost_job_bundle, capsys):
    assert doctor_main([lost_job_bundle, "--json"]) == 0
    diag = json.loads(capsys.readouterr().out)
    assert any(f["pathology"] == "respawn-exhausted"
               for f in diag["findings"])


# ----------------------------------------------------------------------
# pathology 2: root failover (election narrative)
# ----------------------------------------------------------------------
def test_doctor_narrates_root_failover(tmp_path):
    path = str(tmp_path / "root-kill.json")
    report = run_chaos_workload(n_nodes=15, n_clients=8, drop_rate=0.01,
                                seed=5, fault_seed=13,
                                kill_ranks=(0,), kill_at=0.12,
                                hb_period=0.05, n_iters=2, iter_gap=0.1,
                                timeout=0.5, retries=10, run_until=40.0,
                                kvs_replicas=(1, 2),
                                postmortem_out=path)
    assert report.converged, report.errors
    diag = diagnose([path])
    found = {f["pathology"]: f for f in diag["findings"]}
    assert "root-failover" in found
    f = found["root-failover"]
    assert f["severity"] == "info"
    assert "rank 0 died" in f["summary"]
    assert "promoted" in f["summary"]
    assert diag["dead_ranks"] == [0]
    # Election timeline reconstructed from promote/election records.
    assert "election" in diag["timelines"]
    assert diag["timelines"]["election"]


# ----------------------------------------------------------------------
# pathology 3: orphaned version waiter
# ----------------------------------------------------------------------
def test_doctor_root_causes_orphaned_waiter(tmp_path):
    cluster = make_cluster(4, seed=2)
    session = standard_session(cluster)
    session.start()
    sim = cluster.sim

    def waiter():
        kvs = KvsClient(session.connect(2, collective=False))
        yield kvs.put("w", 1)
        yield kvs.commit()          # root reaches version 1 ...
        yield kvs.wait_version(5)   # ... but nobody will publish 5

    sim.spawn(waiter())
    sim.run(until=2.0)
    path = write_bundle(
        capture_bundle(session, "seeded orphan waiter", kind="test"),
        str(tmp_path / "orphan.json"))
    session.stop()
    diag = diagnose([path])
    found = {f["pathology"]: f for f in diag["findings"]}
    assert "orphaned-waiter" in found
    f = found["orphaned-waiter"]
    assert f["severity"] == "error"
    assert "[5]" in f["summary"]
    assert any("max applied" in ev for ev in f["evidence"])


# ----------------------------------------------------------------------
# pathology 4: lost fence ack (fence stuck short of quorum)
# ----------------------------------------------------------------------
def test_doctor_root_causes_lost_fence_ack(tmp_path):
    cluster = make_cluster(7, seed=4)
    session = standard_session(cluster)
    session.start()
    sim = cluster.sim

    def fencer(rank):
        kvs = KvsClient(session.connect(rank, collective=False))
        yield kvs.put(f"f.{rank}", rank)
        yield kvs.fence("stuck", 3)     # third contribution never comes

    for rank in (1, 2):
        sim.spawn(fencer(rank))
    sim.run(until=2.0)
    path = write_bundle(
        capture_bundle(session, "seeded stuck fence", kind="test"),
        str(tmp_path / "fence.json"))
    session.stop()
    diag = diagnose([path])
    fence_findings = [f for f in diag["findings"]
                      if f["pathology"] == "lost-fence-ack"]
    assert fence_findings
    f = fence_findings[0]
    assert f["severity"] == "error"
    assert "'stuck'" in f["summary"]
    assert f["entity"] == ("fence", "stuck")
    assert "fence:stuck" in diag["timelines"]


# ----------------------------------------------------------------------
# multi-bundle merge
# ----------------------------------------------------------------------
def test_doctor_merges_bundles(clean_bundle_path, lost_job_bundle):
    solo = Doctor([load_bundle(lost_job_bundle)])
    merged = Doctor([load_bundle(clean_bundle_path),
                     load_bundle(lost_job_bundle)])
    # Later bundles win per rank: the lost-job session's 15 brokers
    # override the clean session's 7 on the overlap.
    assert len(merged.brokers) == 15
    assert merged.by_kind("wexec_lost") == solo.by_kind("wexec_lost")
    found = {f["pathology"] for f in merged.diagnose()["findings"]}
    assert "respawn-exhausted" in found
