"""Property-based tests of distributed invariants.

Hypothesis drives randomized workloads through the full simulated
stack and checks the system-level guarantees: linearized commit order,
fence completeness under arbitrary placements, and per-pair FIFO
delivery in the fabric.
"""

from hypothesis import given, settings, strategies as st

from repro.cmb.modules import BarrierModule
from repro.cmb.session import CommsSession, ModuleSpec
from repro.cmb.topology import TreeTopology
from repro.kvs import KvsClient, KvsModule
from repro.sim.cluster import make_cluster
from repro.sim.kernel import Simulation
from repro.sim.network import Network, NetworkParams

# -- strategies -------------------------------------------------------------

_key = st.sampled_from([f"k{i}" for i in range(6)]).map(
    lambda k: f"prop.{k}")
_batch = st.lists(st.tuples(_key, st.integers(0, 999)),
                  min_size=1, max_size=4)


@st.composite
def commit_workload(draw):
    """A set of clients, each with a sequence of commit batches."""
    nclients = draw(st.integers(1, 4))
    return [
        (draw(st.integers(0, 7)),                     # session rank
         draw(st.lists(_batch, min_size=1, max_size=3)))
        for _ in range(nclients)
    ]


class TestCommitLinearization:
    @given(workload=commit_workload())
    @settings(max_examples=40, deadline=None)
    def test_final_state_matches_master_commit_order(self, workload):
        """Whatever the interleaving, the final KVS state equals a flat
        dict built by applying batches in master version order, and
        every rank observes that same state."""
        cluster = make_cluster(8, seed=99)
        session = CommsSession(
            cluster, topology=TreeTopology(8),
            modules=[ModuleSpec(KvsModule)]).start()
        sim = cluster.sim
        committed = []  # (version, batch)

        def client(rank, batches):
            kvs = KvsClient(session.connect(rank))
            for batch in batches:
                for key, value in batch:
                    yield kvs.put(key, value)
                resp = yield kvs.commit()
                committed.append((resp["version"], batch))

        procs = [sim.spawn(client(rank, batches))
                 for rank, batches in workload]
        sim.run()
        assert all(p.ok for p in procs)

        # Versions are unique and dense.
        versions = sorted(v for v, _ in committed)
        assert versions == list(range(1, len(committed) + 1))

        model = {}
        for _version, batch in sorted(committed, key=lambda x: x[0]):
            for key, value in batch:
                model[key] = value

        final_version = len(committed)

        def reader(rank):
            kvs = KvsClient(session.connect(rank, collective=False))
            yield kvs.wait_version(final_version)
            out = {}
            for key in model:
                out[key] = yield kvs.get(key)
            return out

        readers = [sim.spawn(reader(r)) for r in (0, 3, 7)]
        sim.run()
        for p in readers:
            assert p.ok and p.value == model


class TestFencePlacementProperty:
    @given(placement=st.lists(st.integers(0, 14), min_size=2, max_size=12),
           vsize=st.sampled_from([4, 64, 512]))
    @settings(max_examples=30, deadline=None)
    def test_fence_completes_under_any_placement(self, placement, vsize):
        """However participants are scattered over the tree, the fence
        releases everyone and makes all keys globally visible."""
        cluster = make_cluster(15, seed=7)
        session = CommsSession(
            cluster, topology=TreeTopology(15),
            modules=[ModuleSpec(KvsModule)]).start()
        sim = cluster.sim
        n = len(placement)

        def member(i, rank):
            kvs = KvsClient(session.connect(rank))
            yield kvs.put(f"pf.k{i}", "v" * vsize)
            yield kvs.fence("pf", n)
            peer = (i + 1) % n
            value = yield kvs.get(f"pf.k{peer}")
            assert value == "v" * vsize
            return i

        procs = [sim.spawn(member(i, rank))
                 for i, rank in enumerate(placement)]
        sim.run()
        assert sorted(p.value for p in procs) == list(range(n))

    @given(placement=st.lists(st.integers(0, 7), min_size=2, max_size=8))
    @settings(max_examples=30, deadline=None)
    def test_barrier_releases_after_last_arrival(self, placement):
        cluster = make_cluster(8, seed=7)
        session = CommsSession(
            cluster, topology=TreeTopology(8),
            modules=[ModuleSpec(BarrierModule)]).start()
        sim = cluster.sim
        n = len(placement)
        last_arrival = (n - 1) * 1e-5
        releases = []

        def member(i, rank):
            handle = session.connect(rank)
            yield sim.timeout(i * 1e-5)
            yield handle.barrier("pb", n)
            releases.append(sim.now)

        procs = [sim.spawn(member(i, r)) for i, r in enumerate(placement)]
        sim.run()
        assert all(p.ok for p in procs)
        assert len(releases) == n
        assert min(releases) >= last_arrival


class TestFabricFifoProperty:
    @given(sends=st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 3),
                  st.integers(1, 5000)),
        min_size=1, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_per_pair_fifo(self, sends):
        """Messages between the same (src, dst) pair always arrive in
        send order, whatever the interleaving with other pairs."""
        sim = Simulation(seed=3)
        net = Network(sim, NetworkParams())
        for i in range(4):
            net.register(i)
        seqnos = {}
        for src, dst, size in sends:
            seq = seqnos.setdefault((src, dst), [])
            seq.append(len(seq))
            net.send(src, dst, (src, dst, seq[-1]), size)
        sim.run()
        got: dict = {}
        for node in range(4):
            for (src, dst, seq) in net.inbox(node).peek_all():
                got.setdefault((src, dst), []).append(seq)
        for pair, seqs in got.items():
            assert seqs == sorted(seqs), f"reordered {pair}: {seqs}"

    @given(sends=st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 3),
                  st.integers(1, 5000)),
        min_size=1, max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_conservation(self, sends):
        """Every message is either delivered or dropped, never both or
        neither (all nodes alive here: all delivered)."""
        sim = Simulation(seed=4)
        net = Network(sim, NetworkParams())
        for i in range(4):
            net.register(i)
        for src, dst, size in sends:
            net.send(src, dst, "m", size)
        sim.run()
        total_in = sum(len(net.inbox(i)) for i in range(4))
        assert total_in == len(sends)
        assert net.delivered == len(sends)
        assert net.dropped == 0
