"""Tests for the generalized resource graph."""

import pytest

from repro.resource import types as rt
from repro.resource.model import Resource, ResourceGraph, build_cluster_graph


@pytest.fixture
def graph():
    return build_cluster_graph("zin", n_racks=2, nodes_per_rack=3,
                               sockets=2, cores_per_socket=4)


class TestGraphConstruction:
    def test_counts(self, graph):
        assert graph.count(rt.RACK) == 2
        assert graph.count(rt.NODE) == 6
        assert graph.count(rt.SOCKET) == 12
        assert graph.count(rt.CORE) == 48
        assert graph.count(rt.MEMORY) == 6
        assert graph.count(rt.POWER) == 3  # cluster + 2 racks

    def test_root_is_cluster(self, graph):
        assert graph.root.rtype == rt.CLUSTER
        assert graph.root.name == "zin"

    def test_single_root_enforced(self):
        g = ResourceGraph()
        g.add(rt.CLUSTER, "a")
        with pytest.raises(ValueError):
            g.add(rt.CLUSTER, "b")

    def test_subtree_scoping(self, graph):
        rack0 = graph.find(rt.RACK)[0]
        assert graph.count(rt.NODE, within=rack0.rid) == 3
        assert graph.count(rt.CORE, within=rack0.rid) == 24

    def test_ancestors_chain(self, graph):
        core = graph.find(rt.CORE)[0]
        types = [r.rtype for r in graph.ancestors(core.rid)]
        assert types == [rt.SOCKET, rt.NODE, rt.RACK, rt.CLUSTER]

    def test_path_name(self, graph):
        core = graph.find(rt.CORE)[0]
        path = graph.path_name(core.rid)
        assert path.startswith("zin/rack0/node0000/socket0/core0")

    def test_find_with_predicate(self, graph):
        nodes = graph.find(rt.NODE,
                           pred=lambda r: r.properties["index"] % 2 == 0)
        assert [n.properties["index"] for n in nodes] == [0, 2, 4]

    def test_power_capacity_defaults_to_worst_case(self, graph):
        cluster_power = [r for r in graph.find(rt.POWER)
                         if "zin-power" in r.name][0]
        assert cluster_power.capacity == 6 * 300.0

    def test_custom_power_caps(self):
        g = build_cluster_graph("c", 1, 4, rack_power_cap=500.0,
                                cluster_power_cap=450.0)
        caps = sorted(r.capacity for r in g.find(rt.POWER))
        assert caps == [450.0, 500.0]

    def test_empty_graph_root_raises(self):
        with pytest.raises(ValueError):
            _ = ResourceGraph().root

    def test_cross_edges(self, graph):
        fs = graph.add(rt.FILESYSTEM, "lustre", parent=graph.root_id,
                       capacity=1e12)
        graph.link(fs.rid, "serves", graph.root_id)
        assert (("serves", graph.root_id) in graph.by_id[fs.rid].edges)

    def test_graft_under_center(self):
        center = ResourceGraph()
        c = center.add(rt.CENTER, "llnl")
        build_cluster_graph("zin", 1, 2, parent_graph=center, parent_id=c.rid)
        build_cluster_graph("cab", 1, 2, parent_graph=center, parent_id=c.rid)
        assert center.count(rt.CLUSTER) == 2
        assert center.count(rt.NODE) == 4


class TestResourceState:
    def test_consumable_available(self):
        r = Resource(0, rt.POWER, "p", capacity=100.0)
        assert r.available == 100.0
        r.used = 30.0
        assert r.available == 70.0

    def test_structural_available_tracks_allocation(self):
        r = Resource(0, rt.CORE, "c")
        assert r.available == 1.0
        r.allocated_to = "job1"
        assert r.available == 0.0


class TestSerialization:
    def test_roundtrip(self, graph):
        data = graph.to_dict()
        clone = ResourceGraph.from_dict(data)
        assert clone.count(rt.CORE) == graph.count(rt.CORE)
        assert clone.root.name == graph.root.name
        core = clone.find(rt.CORE)[0]
        assert [r.rtype for r in clone.ancestors(core.rid)] == \
            [rt.SOCKET, rt.NODE, rt.RACK, rt.CLUSTER]

    def test_roundtrip_preserves_usage(self, graph):
        power = graph.find(rt.POWER)[0]
        power.used = 123.0
        clone = ResourceGraph.from_dict(graph.to_dict())
        assert clone.by_id[power.rid].used == 123.0

    def test_roundtrip_is_json_clean(self, graph):
        import json
        text = json.dumps(graph.to_dict())
        clone = ResourceGraph.from_dict(json.loads(text))
        assert clone.count(rt.NODE) == 6

    def test_new_ids_continue_after_load(self, graph):
        clone = ResourceGraph.from_dict(graph.to_dict())
        added = clone.add(rt.GPU, "gpu0", parent=clone.root_id)
        assert added.rid not in graph.by_id or \
            added.rid > max(r for r in graph.by_id) - 1
        assert clone.by_id[added.rid].name == "gpu0"
