"""Tests for allocation, consumable charging, constraints, projection."""

import pytest

from repro.resource import types as rt
from repro.resource.constraints import (MaxCoresPerJob, MaxNodesPerJob,
                                        NodeSpreadConstraint, PowerBudget,
                                        PredicateConstraint)
from repro.resource.model import build_cluster_graph
from repro.resource.pool import (AllocationError, AllocationRequest,
                                 ResourcePool)
from repro.resource.projection import graft_allocation, project_allocation


def make_pool(**kwargs):
    graph = build_cluster_graph("zin", n_racks=2, nodes_per_rack=2,
                                sockets=2, cores_per_socket=4, **kwargs)
    return graph, ResourcePool(graph)


class TestBasicAllocation:
    def test_allocate_and_release(self):
        graph, pool = make_pool()
        alloc = pool.allocate("j1", AllocationRequest(ncores=10))
        assert alloc.ncores == 10
        assert pool.total_free_cores() == 32 - 10
        pool.release("j1")
        assert pool.total_free_cores() == 32

    def test_first_fit_packs_nodes(self):
        graph, pool = make_pool()
        alloc = pool.allocate("j1", AllocationRequest(ncores=8))
        assert alloc.nnodes == 1  # fits on one 8-core node

    def test_spans_nodes_when_needed(self):
        graph, pool = make_pool()
        alloc = pool.allocate("j1", AllocationRequest(ncores=20))
        assert alloc.nnodes == 3

    def test_insufficient_cores_raises(self):
        graph, pool = make_pool()
        with pytest.raises(AllocationError, match="insufficient"):
            pool.allocate("big", AllocationRequest(ncores=33))
        # Failed allocation holds nothing.
        assert pool.total_free_cores() == 32

    def test_duplicate_jobid_rejected(self):
        graph, pool = make_pool()
        pool.allocate("j", AllocationRequest(ncores=1))
        with pytest.raises(AllocationError, match="already holds"):
            pool.allocate("j", AllocationRequest(ncores=1))

    def test_release_unknown_rejected(self):
        graph, pool = make_pool()
        with pytest.raises(AllocationError):
            pool.release("ghost")

    def test_cores_per_node_shape(self):
        graph, pool = make_pool()
        alloc = pool.allocate("j", AllocationRequest(ncores=12,
                                                     cores_per_node=4))
        assert alloc.nnodes == 3
        assert all(len(v) == 4 for v in alloc.cores.values())

    def test_exclusive_takes_whole_nodes_only(self):
        graph, pool = make_pool()
        pool.allocate("small", AllocationRequest(ncores=1))
        alloc = pool.allocate("excl", AllocationRequest(ncores=8,
                                                        exclusive=True))
        # The partially used node is skipped.
        used_node = next(iter(pool.allocations["small"].cores))
        assert used_node not in alloc.cores

    def test_node_filter(self):
        graph, pool = make_pool()
        alloc = pool.allocate("j", AllocationRequest(
            ncores=4,
            node_filter=lambda n: n.properties["index"] == 3))
        assert alloc.node_indices(graph) == [3]

    def test_allocation_node_indices(self):
        graph, pool = make_pool()
        alloc = pool.allocate("j", AllocationRequest(ncores=16))
        assert alloc.node_indices(graph) == [0, 1]


class TestConsumables:
    def test_memory_charged_and_refunded(self):
        graph, pool = make_pool()
        gib = 2**30
        alloc = pool.allocate("j", AllocationRequest(
            ncores=4, memory_per_core=2 * gib))
        node_rid = next(iter(alloc.cores))
        mem = graph.find(rt.MEMORY, within=node_rid)[0]
        assert mem.used == 8 * gib
        pool.release("j")
        assert mem.used == 0

    def test_memory_exhaustion_skips_node(self):
        graph, pool = make_pool()
        gib = 2**30
        # 8 cores x 4 GiB = 32 GiB: fills one node's memory.
        pool.allocate("a", AllocationRequest(ncores=8, memory_per_core=4 * gib))
        alloc = pool.allocate("b", AllocationRequest(ncores=8,
                                                     memory_per_core=4 * gib))
        assert set(alloc.cores).isdisjoint(set(pool.allocations["a"].cores))

    def test_memory_never_satisfiable_raises(self):
        graph, pool = make_pool()
        with pytest.raises(AllocationError):
            pool.allocate("j", AllocationRequest(
                ncores=1, memory_per_core=33 * 2**30))

    def test_power_charged_up_the_ancestry(self):
        graph, pool = make_pool()
        alloc = pool.allocate("j", AllocationRequest(ncores=8,
                                                     watts_per_core=10.0))
        cluster_power = [r for r in graph.find(rt.POWER)
                         if r.name == "zin-power"][0]
        rack_powers = [r for r in graph.find(rt.POWER) if "rack" in r.name]
        assert cluster_power.used == 80.0
        assert sum(r.used for r in rack_powers) == 80.0
        pool.release("j")
        assert cluster_power.used == 0.0

    def test_rack_power_cap_forces_spreading(self):
        graph = build_cluster_graph("c", n_racks=2, nodes_per_rack=2,
                                    sockets=2, cores_per_socket=4,
                                    rack_power_cap=100.0)
        pool = ResourcePool(graph)
        # 10 W/core: a rack (16 cores worst case = 160 W) can only host
        # 10 cores; 16 cores must span both racks.
        alloc = pool.allocate("j", AllocationRequest(ncores=16,
                                                     watts_per_core=10.0))
        racks_used = {graph.parent(nrid).rid for nrid in alloc.cores}
        assert len(racks_used) == 2

    def test_cluster_power_cap_rejects(self):
        graph = build_cluster_graph("c", n_racks=1, nodes_per_rack=2,
                                    sockets=2, cores_per_socket=4,
                                    cluster_power_cap=50.0)
        pool = ResourcePool(graph)
        with pytest.raises(AllocationError):
            pool.allocate("j", AllocationRequest(ncores=8,
                                                 watts_per_core=10.0))


class TestGrowShrink:
    def test_grow_adds_cores(self):
        graph, pool = make_pool()
        pool.allocate("j", AllocationRequest(ncores=4))
        assert pool.grow("j", 6) == 6
        assert pool.allocations["j"].ncores == 10
        assert pool.total_free_cores() == 22

    def test_grow_partial_when_scarce(self):
        graph, pool = make_pool()
        pool.allocate("big", AllocationRequest(ncores=30))
        pool.allocate("j", AllocationRequest(ncores=1))
        assert pool.grow("j", 5) == 1  # only one core left

    def test_shrink_returns_cores(self):
        graph, pool = make_pool()
        pool.allocate("j", AllocationRequest(ncores=10))
        assert pool.shrink("j", 4) == 4
        assert pool.allocations["j"].ncores == 6
        assert pool.total_free_cores() == 26

    def test_shrink_beyond_allocation_clamps(self):
        graph, pool = make_pool()
        pool.allocate("j", AllocationRequest(ncores=3))
        assert pool.shrink("j", 100) == 3
        assert pool.allocations["j"].ncores == 0

    def test_grow_respects_power_cap(self):
        graph = build_cluster_graph("c", 1, 2, sockets=2, cores_per_socket=4,
                                    cluster_power_cap=60.0)
        pool = ResourcePool(graph)
        pool.allocate("j", AllocationRequest(ncores=4, watts_per_core=10.0))
        # 40 W used; cap 60 W; only 2 more cores fit.
        assert pool.grow("j", 8) == 2

    def test_grow_and_shrink_power_accounting_balances(self):
        graph, pool = make_pool()
        pool.allocate("j", AllocationRequest(ncores=4, watts_per_core=5.0))
        pool.grow("j", 4)
        pool.shrink("j", 8)
        cluster_power = [r for r in graph.find(rt.POWER)
                         if r.name == "zin-power"][0]
        assert cluster_power.used == 0.0

    def test_grow_unknown_job_raises(self):
        graph, pool = make_pool()
        with pytest.raises(AllocationError):
            pool.grow("ghost", 1)


class TestConstraints:
    def test_max_cores_per_job(self):
        graph = build_cluster_graph("c", 1, 2, sockets=2, cores_per_socket=4)
        pool = ResourcePool(graph, constraints=[MaxCoresPerJob(8)])
        pool.allocate("ok", AllocationRequest(ncores=8))
        pool.release("ok")
        with pytest.raises(AllocationError, match="per-job limit"):
            pool.allocate("too-big", AllocationRequest(ncores=9))

    def test_max_nodes_per_job(self):
        graph = build_cluster_graph("c", 1, 4, sockets=1, cores_per_socket=4)
        pool = ResourcePool(graph, constraints=[MaxNodesPerJob(2)])
        with pytest.raises(AllocationError):
            pool.allocate("wide", AllocationRequest(ncores=12))

    def test_node_spread(self):
        graph = build_cluster_graph("c", 1, 4, sockets=1, cores_per_socket=4)
        pool = ResourcePool(graph, constraints=[NodeSpreadConstraint(2)])
        with pytest.raises(AllocationError):
            pool.allocate("narrow", AllocationRequest(ncores=4))
        pool.allocate("wide", AllocationRequest(ncores=4, cores_per_node=2))

    def test_power_budget_policy(self):
        graph = build_cluster_graph("c", 1, 2, sockets=2, cores_per_socket=4)
        power_rid = [r for r in graph.find(rt.POWER)
                     if r.name == "c-power"][0].rid
        pool = ResourcePool(graph,
                            constraints=[PowerBudget(power_rid, 50.0)])
        pool.allocate("ok", AllocationRequest(ncores=4, watts_per_core=10.0))
        with pytest.raises(AllocationError, match="power budget"):
            pool.allocate("over", AllocationRequest(ncores=2,
                                                    watts_per_core=10.0))

    def test_predicate_constraint(self):
        graph, _ = make_pool()
        deny_all = PredicateConstraint(lambda p, r, plan: "denied")
        pool = ResourcePool(graph, constraints=[deny_all])
        with pytest.raises(AllocationError, match="denied"):
            pool.allocate("j", AllocationRequest(ncores=1))

    def test_constraint_failure_leaves_no_residue(self):
        graph = build_cluster_graph("c", 1, 2, sockets=2, cores_per_socket=4)
        pool = ResourcePool(graph, constraints=[MaxCoresPerJob(4)])
        with pytest.raises(AllocationError):
            pool.allocate("j", AllocationRequest(ncores=8,
                                                 watts_per_core=10.0))
        assert pool.total_free_cores() == 16
        assert all(r.used == 0 for r in graph.find(rt.POWER))


class TestProjection:
    def test_projection_contains_only_the_grant(self):
        graph, pool = make_pool()
        alloc = pool.allocate("child", AllocationRequest(ncores=10))
        child = project_allocation(graph, alloc, name="childview")
        assert child.count(rt.CORE) == 10
        assert child.count(rt.NODE) == alloc.nnodes
        assert child.root.name == "childview"

    def test_projection_scales_memory(self):
        graph, pool = make_pool()
        alloc = pool.allocate("child", AllocationRequest(ncores=4))
        child = project_allocation(graph, alloc)
        mem = child.find(rt.MEMORY)[0]
        assert mem.capacity == pytest.approx(32 * 2**30 * 4 / 8)

    def test_projection_preserves_node_indices(self):
        graph, pool = make_pool()
        alloc = pool.allocate("child", AllocationRequest(
            ncores=4, node_filter=lambda n: n.properties["index"] == 2))
        child = project_allocation(graph, alloc)
        assert child.find(rt.NODE)[0].properties["index"] == 2

    def test_child_pool_is_bounded(self):
        """Parent bounding rule: the child cannot allocate more than
        granted, no matter what it asks for."""
        graph, pool = make_pool()
        alloc = pool.allocate("child", AllocationRequest(ncores=6))
        child_pool = ResourcePool(project_allocation(graph, alloc))
        assert child_pool.total_cores() == 6
        with pytest.raises(AllocationError):
            child_pool.allocate("sub", AllocationRequest(ncores=7))

    def test_graft_extends_existing_node(self):
        graph, pool = make_pool()
        alloc = pool.allocate("child", AllocationRequest(ncores=4))
        child = project_allocation(graph, alloc)
        before = {nrid: set(v) for nrid, v in alloc.cores.items()}
        pool.grow("child", 2)
        new_cores = {
            nrid: [c for c in crids if c not in before.get(nrid, set())]
            for nrid, crids in alloc.cores.items()}
        new_cores = {n: c for n, c in new_cores.items() if c}
        added = graft_allocation(graph, child, new_cores)
        assert added == 2
        assert child.count(rt.CORE) == 6

    def test_graft_adds_new_node(self):
        graph, pool = make_pool()
        alloc = pool.allocate("child", AllocationRequest(ncores=8))
        child = project_allocation(graph, alloc)
        assert child.count(rt.NODE) == 1
        before = {nrid: set(v) for nrid, v in alloc.cores.items()}
        pool.grow("child", 8)  # spills onto a second node
        new_cores = {
            nrid: [c for c in crids if c not in before.get(nrid, set())]
            for nrid, crids in alloc.cores.items()}
        new_cores = {n: c for n, c in new_cores.items() if c}
        graft_allocation(graph, child, new_cores)
        assert child.count(rt.NODE) == 2
        assert child.count(rt.CORE) == 16


class TestPlacementPolicies:
    """Node-ordering policies from repro.resource.matcher."""

    def _pool(self, placement):
        from repro.resource.matcher import (BestFit, FirstFit, Pack,
                                            Spread, WorstFit)  # noqa: F401
        graph = build_cluster_graph("p", n_racks=1, nodes_per_rack=4,
                                    sockets=1, cores_per_socket=8)
        return graph, ResourcePool(graph, placement=placement)

    def test_first_fit_packs_graph_order(self):
        from repro.resource.matcher import FirstFit
        graph, pool = self._pool(FirstFit())
        a = pool.allocate("a", AllocationRequest(ncores=4))
        b = pool.allocate("b", AllocationRequest(ncores=4))
        # Both land on node 0 (8 cores).
        assert a.node_indices(graph) == b.node_indices(graph) == [0]

    def test_worst_fit_balances(self):
        from repro.resource.matcher import WorstFit
        graph, pool = self._pool(WorstFit())
        a = pool.allocate("a", AllocationRequest(ncores=4))
        b = pool.allocate("b", AllocationRequest(ncores=4))
        assert a.node_indices(graph) != b.node_indices(graph)

    def test_spread_prefers_idle_nodes(self):
        from repro.resource.matcher import Spread
        graph, pool = self._pool(Spread())
        used = set()
        for i in range(4):
            alloc = pool.allocate(f"j{i}", AllocationRequest(ncores=2))
            used.update(alloc.node_indices(graph))
        assert used == {0, 1, 2, 3}  # one job per node

    def test_pack_fills_partial_nodes_first(self):
        from repro.resource.matcher import Pack
        graph, pool = self._pool(Pack())
        pool.allocate("seed", AllocationRequest(ncores=2))  # node 0 partial
        nxt = pool.allocate("next", AllocationRequest(ncores=2))
        assert nxt.node_indices(graph) == [0]

    def test_best_fit_prefers_tightest_hole(self):
        from repro.resource.matcher import BestFit
        graph, pool = self._pool(BestFit())
        pool.allocate("big", AllocationRequest(ncores=6))   # node0: 2 free
        # Best-fit fills node0's hole first, then nodes 1 and 2.
        pool.allocate("mid", AllocationRequest(ncores=12))
        # Free now: node0 0, node1 0, node2 6, node3 8.
        tight = pool.allocate("fit", AllocationRequest(ncores=2))
        assert tight.node_indices(graph) == [2]

    def test_best_fit_leaves_whole_nodes_for_exclusive(self):
        from repro.resource.matcher import BestFit, FirstFit
        for placement, expect_ok in ((BestFit(), True), (None, True)):
            graph, pool = self._pool(placement)
            pool.allocate("s1", AllocationRequest(ncores=2))
            pool.allocate("s2", AllocationRequest(ncores=2))
            # With best-fit both small jobs share node 0, keeping three
            # whole nodes; 3 exclusive node-jobs must fit.
            for i in range(3):
                if placement is None:
                    break
                pool.allocate(f"x{i}", AllocationRequest(ncores=8,
                                                         exclusive=True))
