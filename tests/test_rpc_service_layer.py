"""Tests for the unified RPC service layer: request contexts, structured
errnum-coded errors, the upstream-proxy helper, and per-module message
counters."""

import pytest

from repro.cmb.errors import (EINVAL, ENOENT, ENOSYS, EPROTO, ERROR_CODES,
                              ETIMEDOUT, RpcError)
from repro.cmb.message import Message, MessageType, RequestContext
from repro.cmb.module import CommsModule, request_handler
from repro.cmb.modules.jobmgr import JobManagerModule
from repro.cmb.session import CommsSession, ModuleSpec
from repro.cmb.topology import TreeTopology
from repro.kvs.module import KvsModule
from repro.sim.cluster import make_cluster
from repro.sim.trace import Tracer


class EchoModule(CommsModule):
    name = "echo"

    def req_ping(self, msg):
        self.respond(msg, {"pong": msg.payload.get("data"),
                           "served_by": self.rank})

    @request_handler(required=("a", "b"))
    def req_add(self, msg):
        self.respond(msg, {"sum": msg.payload["a"] + msg.payload["b"]})

    def req_boom(self, msg):
        self.respond(msg, error="exploded")


def make_session(n=8, arity=2, modules=(), tracer=None):
    cluster = make_cluster(n, seed=1)
    session = CommsSession(cluster, topology=TreeTopology(n, arity=arity),
                           modules=list(modules), tracer=tracer).start()
    return cluster, session


def run_client(cluster, session, rank, fn):
    handle = session.connect(rank, collective=False)
    proc = cluster.sim.spawn(fn(handle))
    return cluster.sim.run_until_complete(proc)


class TestRequestContext:
    def test_ensure_context_is_idempotent(self):
        msg = Message(topic="a.b", mtype=MessageType.REQUEST, msgid=7)
        msg.ensure_context(origin_rank=3, deadline=1.5)
        ctx = msg.ctx
        assert ctx == RequestContext(reqid=7, origin_rank=3, deadline=1.5)
        msg.ensure_context(origin_rank=9)   # already set: unchanged
        assert msg.ctx is ctx

    def test_expired_is_strict(self):
        ctx = RequestContext(reqid=1, deadline=2.0)
        assert not ctx.expired(2.0)
        assert ctx.expired(2.0000001)
        assert not RequestContext(reqid=1).expired(1e9)

    def test_context_rides_the_header_frame(self):
        # The context must not change the payload frame, so simulated
        # wire sizes (and all benchmark latencies) stay identical.
        bare = Message(topic="kvs.put", mtype=MessageType.REQUEST,
                       payload={"key": "a", "value": 1})
        ctxed = Message(topic="kvs.put", mtype=MessageType.REQUEST,
                        payload={"key": "a", "value": 1})
        ctxed.ensure_context(origin_rank=5, deadline=9.0)
        assert ctxed.size() == bare.size()

    def test_response_inherits_context_and_error_code(self):
        msg = Message(topic="x.y", mtype=MessageType.REQUEST, msgid=11)
        msg.ensure_context(origin_rank=2)
        resp = msg.make_response(error="nope", err_rank=4)
        assert resp.ctx is msg.ctx
        assert resp.errnum == EPROTO       # default code for coded errors
        assert resp.err_rank == 4
        ok = msg.make_response(payload={"fine": 1})
        assert ok.errnum is None and ok.err_rank == -1


class TestStructuredErrors:
    def test_rpc_error_defaults(self):
        exc = RpcError("t.m", "broken")
        assert exc.code == EPROTO and exc.rank == -1
        assert EPROTO in ERROR_CODES

    def test_module_error_carries_code_and_rank(self):
        cluster, session = make_session(modules=[ModuleSpec(EchoModule)])

        def client(h):
            try:
                yield h.rpc("echo.boom", {})
            except RpcError as exc:
                return exc

        exc = run_client(cluster, session, 2, client)
        assert exc.code == EPROTO           # un-coded respond() defaults
        assert exc.rank == 2                # the responding broker

    def test_multihop_enosys_records_failing_rank(self):
        # Module loaded at depth <= 1 only; rank 7 (depth 3) routes
        # 7 -> 3 -> 1.  Rank 3 has no module so forwards; rank 1 has the
        # module but no handler -> ENOSYS recorded *at rank 1* and
        # carried losslessly back through the relay hops.
        cluster, session = make_session(
            n=15, modules=[ModuleSpec(EchoModule, max_depth=1)])

        def client(h):
            try:
                yield h.rpc("echo.nothing", {})
            except RpcError as exc:
                return exc

        exc = run_client(cluster, session, 7, client)
        assert "no handler" in exc.error
        assert exc.code == ENOSYS
        assert exc.rank == 1

    def test_unmatched_topic_is_enosys_at_root(self):
        cluster, session = make_session(modules=[])

        def client(h):
            try:
                yield h.rpc("nosuch.thing", {})
            except RpcError as exc:
                return exc

        exc = run_client(cluster, session, 3, client)
        assert "no module matches" in exc.error
        assert exc.code == ENOSYS and exc.rank == 0

    def test_proxy_upstream_propagates_code_and_rank(self):
        # job.info proxies hop by hop to the root, where the unknown
        # jobid produces ENOENT; the proxy relays must not launder the
        # code or the failing rank.
        cluster, session = make_session(
            n=15, modules=[ModuleSpec(JobManagerModule)])

        def client(h):
            try:
                yield h.rpc("job.info", {"jobid": 999})
            except RpcError as exc:
                return exc

        exc = run_client(cluster, session, 7, client)
        assert "unknown job" in exc.error
        assert exc.code == ENOENT and exc.rank == 0

    def test_kvs_missing_key_is_enoent(self):
        cluster, session = make_session(modules=[ModuleSpec(KvsModule)])

        def client(h):
            from repro.kvs.api import KvsClient
            kvs = KvsClient(h)
            try:
                yield kvs.get("absent.key")
            except RpcError as exc:
                return exc

        exc = run_client(cluster, session, 5, client)
        assert exc.code == ENOENT


class TestHandlerRegistry:
    def test_handlers_discovered_with_requirements(self):
        specs = EchoModule.handlers()
        assert specs["ping"] == ()
        assert specs["add"] == ("a", "b")

    def test_missing_required_field_is_einval(self):
        cluster, session = make_session(modules=[ModuleSpec(EchoModule)])

        def client(h):
            try:
                yield h.rpc("echo.add", {"a": 1})
            except RpcError as exc:
                return exc

        exc = run_client(cluster, session, 4, client)
        assert exc.code == EINVAL
        assert "missing required payload field" in exc.error
        assert exc.error.endswith("b")

    def test_valid_request_passes_validation(self):
        cluster, session = make_session(modules=[ModuleSpec(EchoModule)])

        def client(h):
            return (yield h.rpc("echo.add", {"a": 2, "b": 3}))

        assert run_client(cluster, session, 4, client) == {"sum": 5}


class TestDeadlines:
    def _expire_mid_tree(self):
        # Module at the root only; a request from rank 7 must climb
        # 7 -> 3 -> 1 -> 0.  A deadline in the past at the first forward
        # hop is dropped there with ETIMEDOUT instead of travelling on.
        cluster, session = make_session(
            n=15, modules=[ModuleSpec(EchoModule, max_depth=0)])

        def client(h):
            try:
                yield h.rpc("echo.ping", {}, deadline=h.sim.now + 1e-9)
            except RpcError as exc:
                return exc

        return run_client(cluster, session, 7, client)

    def test_deadline_expiry_mid_tree_is_etimedout(self):
        exc = self._expire_mid_tree()
        assert exc.code == ETIMEDOUT
        assert "deadline expired in transit" in exc.error
        assert exc.rank in (7, 3, 1)      # dropped before reaching root

    def test_deadline_expiry_is_deterministic(self):
        a = self._expire_mid_tree()
        b = self._expire_mid_tree()
        assert (a.rank, a.error) == (b.rank, b.error)

    def test_generous_deadline_still_served(self):
        cluster, session = make_session(
            n=15, modules=[ModuleSpec(EchoModule, max_depth=0)])

        def client(h):
            return (yield h.rpc("echo.ping", {"data": 1}, deadline=1.0))

        assert run_client(cluster, session, 7, client)["served_by"] == 0

    def test_client_timeout_is_etimedout(self):
        # Client-side timer (no module will ever answer nosuch topics on
        # a dead-silent deadline); code is ETIMEDOUT at the client rank.
        cluster, session = make_session(
            n=15, modules=[ModuleSpec(EchoModule, max_depth=0)])
        session.fail_rank(1)   # request dies at the dead interior node

        def client(h):
            try:
                yield h.rpc("echo.ping", {}, timeout=0.05)
            except RpcError as exc:
                return exc

        exc = run_client(cluster, session, 7, client)
        assert exc.code == ETIMEDOUT
        assert "timeout after" in exc.error


class TestMessageCounters:
    def test_counts_requests_responses_and_errors(self):
        cluster, session = make_session(
            n=15, modules=[ModuleSpec(EchoModule, max_depth=0)])

        def client(h):
            yield h.rpc("echo.ping", {})
            try:
                yield h.rpc("echo.boom", {})
            except RpcError:
                pass

        run_client(cluster, session, 7, client)
        counts = session.message_counts()
        by_kind = {}
        for (mod, plane, kind), n in counts.items():
            assert mod == "echo"
            by_kind[kind] = by_kind.get(kind, 0) + n
        # Two requests climbed 3 tree hops each (+ ipc + local dispatch);
        # one response and one error retraced them.
        assert by_kind["request"] >= 2
        assert by_kind["response"] >= 1
        assert by_kind["error"] >= 1

    def test_tracer_records_msgcounts_at_stop(self):
        tracer = Tracer()
        cluster, session = make_session(
            modules=[ModuleSpec(EchoModule)], tracer=tracer)

        def client(h):
            yield h.rpc("echo.ping", {})

        run_client(cluster, session, 3, client)
        session.stop()
        recs = tracer.records("cmb.msgcounts")
        assert len(recs) == 1
        _, _, breakdown = recs[0]
        assert any(k.startswith("echo/") and "/request" in k
                   for k in breakdown)
        assert all(isinstance(v, int) and v > 0
                   for v in breakdown.values())
