"""Tests for queues, scheduling policies, and cost models."""

import pytest

from repro.core import FluxInstance, JobSpec
from repro.resource import ResourcePool, build_cluster_graph
from repro.sched import (AffineCostModel, EasyBackfillPolicy, FcfsPolicy,
                         JobQueue, SjfPolicy, ZeroCostModel)
from repro.sim import Simulation


def make_instance(ncores=32, policy=None, cost_model=None, seed=0):
    sim = Simulation(seed=seed)
    graph = build_cluster_graph("t", n_racks=1, nodes_per_rack=ncores // 8,
                                sockets=1, cores_per_socket=8)
    pool = ResourcePool(graph)
    inst = FluxInstance(sim, pool, policy=policy or FcfsPolicy(),
                        cost_model=cost_model or ZeroCostModel())
    return sim, inst


class TestJobQueue:
    def test_fifo_by_default(self):
        sim, inst = make_instance()
        q = JobQueue()
        jobs = [inst.submit.__self__ and None for _ in range(0)]  # noqa
        j1 = inst.submit(JobSpec(ncores=1, duration=1))
        j2 = inst.submit(JobSpec(ncores=1, duration=1))
        q.push(j1)
        q.push(j2)
        assert q.snapshot() == [j1, j2]
        assert q.head() is j1

    def test_priority_fn_sorts(self):
        sim, inst = make_instance()
        q = JobQueue(priority_fn=lambda j: j.spec.duration)
        j1 = inst.submit(JobSpec(ncores=1, duration=9))
        j2 = inst.submit(JobSpec(ncores=1, duration=1))
        q.push(j1)
        q.push(j2)
        assert q.snapshot() == [j2, j1]

    def test_remove(self):
        sim, inst = make_instance()
        q = JobQueue()
        j = inst.submit(JobSpec(ncores=1, duration=1))
        q.push(j)
        q.remove(j)
        assert len(q) == 0 and q.head() is None


class TestFcfs:
    def test_jobs_run_in_submission_order(self):
        sim, inst = make_instance(ncores=32)
        jobs = [inst.submit(JobSpec(ncores=32, duration=5.0))
                for _ in range(3)]
        sim.run()
        starts = [j.start_time for j in jobs]
        assert starts == sorted(starts)
        assert starts == [0.0, 5.0, 10.0]

    def test_head_of_line_blocks(self):
        sim, inst = make_instance(ncores=32)
        big = inst.submit(JobSpec(ncores=32, duration=10.0, name="big"))
        blocker = inst.submit(JobSpec(ncores=32, duration=1.0, name="blocked"))
        small = inst.submit(JobSpec(ncores=1, duration=1.0, name="small"))
        sim.run()
        # FCFS: small cannot jump the blocked 32-core job.
        assert small.start_time >= blocker.start_time

    def test_parallel_starts_when_capacity_allows(self):
        sim, inst = make_instance(ncores=32)
        jobs = [inst.submit(JobSpec(ncores=8, duration=5.0))
                for _ in range(4)]
        sim.run()
        assert all(j.start_time == 0.0 for j in jobs)
        assert inst.makespan() == 5.0


class TestSjf:
    def test_short_jobs_first(self):
        sim, inst = make_instance(ncores=8)
        long_j = inst.submit(JobSpec(ncores=8, duration=10.0))
        short_j = inst.submit(JobSpec(ncores=8, duration=1.0))
        mid_j = inst.submit(JobSpec(ncores=8, duration=5.0))
        sim.run()
        # long runs first (it was alone at the first pass), then the
        # queue reorders: short before mid.
        assert short_j.start_time < mid_j.start_time


class TestEasyBackfill:
    def test_backfill_fills_the_hole(self):
        sim, inst = make_instance(ncores=32, policy=EasyBackfillPolicy())
        running = inst.submit(JobSpec(ncores=24, duration=10.0, name="run"))
        waiter = inst.submit(JobSpec(ncores=32, duration=5.0, name="head"))
        filler = inst.submit(JobSpec(ncores=8, duration=2.0, name="fill"))
        sim.run()
        # filler (8 cores, 2 s) fits in the 8 free cores and finishes
        # before the head's shadow time (10 s) -> starts immediately.
        assert filler.start_time == pytest.approx(0.0)
        assert waiter.start_time == pytest.approx(10.0)

    def test_backfill_never_delays_head(self):
        sim, inst = make_instance(ncores=32, policy=EasyBackfillPolicy())
        running = inst.submit(JobSpec(ncores=24, duration=10.0))
        head = inst.submit(JobSpec(ncores=32, duration=5.0))
        # This filler would overrun the shadow time on head-needed cores.
        bad_filler = inst.submit(JobSpec(ncores=8, duration=50.0))
        sim.run()
        assert head.start_time == pytest.approx(10.0)
        assert bad_filler.start_time >= 10.0

    def test_long_filler_on_extra_cores_allowed(self):
        sim, inst = make_instance(ncores=32, policy=EasyBackfillPolicy())
        running = inst.submit(JobSpec(ncores=16, duration=10.0))
        head = inst.submit(JobSpec(ncores=24, duration=5.0))
        # 16 cores free; head needs 24, shadow at t=10 with 8 extra.
        # An 8-core long job fits the extra cores without delaying head.
        extra_filler = inst.submit(JobSpec(ncores=8, duration=100.0))
        sim.run()
        assert extra_filler.start_time == pytest.approx(0.0)
        assert head.start_time == pytest.approx(10.0)

    def test_easy_beats_fcfs_makespan_on_mixed_load(self):
        def run_with(policy):
            sim, inst = make_instance(ncores=32, policy=policy)
            inst.submit(JobSpec(ncores=24, duration=10.0))
            inst.submit(JobSpec(ncores=32, duration=5.0))
            for _ in range(6):
                inst.submit(JobSpec(ncores=4, duration=2.0))
            sim.run()
            return inst.makespan()

        assert run_with(EasyBackfillPolicy()) < run_with(FcfsPolicy())


class TestCostModels:
    def test_zero_cost_passes_instantly(self):
        sim, inst = make_instance(cost_model=ZeroCostModel())
        j = inst.submit(JobSpec(ncores=1, duration=1.0))
        sim.run()
        assert j.start_time == 0.0
        assert inst.sched_time == 0.0

    def test_affine_cost_delays_starts(self):
        model = AffineCostModel(base=0.1, per_job=0.0)
        sim, inst = make_instance(cost_model=model)
        j = inst.submit(JobSpec(ncores=1, duration=1.0))
        sim.run()
        assert j.start_time == pytest.approx(0.1)
        assert inst.sched_time == pytest.approx(0.1)

    def test_cost_scales_with_queue_depth(self):
        m = AffineCostModel(base=0.0, per_job=1e-3, node_factor=0.0)
        assert m.pass_cost(10, 4) == pytest.approx(1e-2)
        assert m.pass_cost(100, 4) == pytest.approx(1e-1)

    def test_cost_scales_with_pool_size(self):
        m = AffineCostModel(base=0.0, per_job=1e-3, node_factor=1.0)
        assert m.pass_cost(1, 63) == pytest.approx(1e-3 * 64)
