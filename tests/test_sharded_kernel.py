"""Sharded event loop: equivalence, lookahead safety, shard mapping.

The contract of :mod:`repro.sim.shard` has two halves:

- **merged mode** (any hook/budget/bound installed, or zero
  lookahead): popping the globally smallest ``(time, priority, seq)``
  across shard heaps with a *global* sequence counter is exactly the
  single-heap total order — SAN105 fingerprints must match
  byte-for-byte.
- **burst mode** (hook-free full drains with positive lookahead):
  shards drain out of global time order inside the conservative
  horizon, so the event *stream* may interleave differently, but
  every observable result (event counts, wire bytes, simulated
  latencies, final clock) must be identical because no cross-shard
  interaction fits inside the horizon window.
"""

import pytest

from repro.cmb.topology import TreeTopology
from repro.kap import KapConfig, run_kap
from repro.sim import Simulation
from repro.sim.shard import ShardedSimulation, shard_map_from_topology

GOLDEN_KAP_256 = "52654cf1c7ec6e222120c2123f5d6763dbdc9834"


# -- shard_map_from_topology --------------------------------------------

class TestShardMap:
    def test_binary_tree_two_shards_split_at_level_one(self):
        topo = TreeTopology(8, arity=2)
        m = shard_map_from_topology(topo, 2)
        # Rank 1's subtree {1,3,4,7} -> shard 0; rank 2's {2,5,6} -> 1;
        # the root shares shard 0.
        assert m[0] == 0
        assert {m[1], m[3], m[4], m[7]} == {0}
        assert {m[2], m[5], m[6]} == {1}

    def test_whole_subtrees_share_a_shard(self):
        topo = TreeTopology(63, arity=2)
        m = shard_map_from_topology(topo, 4)
        for rank in range(1, 63):
            parent = (rank - 1) // 2
            if parent >= 3:  # below the split level, same shard
                assert m[rank] == m[parent], (rank, parent)

    def test_round_robin_when_shards_exceed_level_width(self):
        # 3 shards on a binary tree: level 2 (4 ranks) is the first
        # with >= 3, distributed round-robin.
        topo = TreeTopology(15, arity=2)
        m = shard_map_from_topology(topo, 3)
        assert [m[r] for r in (3, 4, 5, 6)] == [0, 1, 2, 0]
        assert m[0] == m[1] == m[2] == 0  # trunk

    def test_more_shards_than_ranks_is_fine(self):
        topo = TreeTopology(4, arity=2)
        m = shard_map_from_topology(topo, 8)
        assert set(m) == {0, 1, 2, 3}
        assert all(0 <= s < 8 for s in m.values())

    def test_wide_arity(self):
        topo = TreeTopology(32, arity=32)
        m = shard_map_from_topology(topo, 4)
        assert m[0] == 0
        # Level 1 holds all 31 children: round-robin over 4 shards.
        assert [m[r] for r in (1, 2, 3, 4, 5)] == [0, 1, 2, 3, 0]

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            shard_map_from_topology(TreeTopology(4), 0)


# -- deliver_timeout homing ---------------------------------------------

class TestDeliveryHoming:
    def test_cross_shard_delivery_lands_in_target_heap(self):
        sim = ShardedSimulation(nshards=2, lookahead=1.0)
        sim.set_shard_map({0: 0, 1: 1})
        n0, n1 = len(sim._heaps[0]), len(sim._heaps[1])
        sim.deliver_timeout(1, 5.0)
        assert len(sim._heaps[1]) == n1 + 1
        assert len(sim._heaps[0]) == n0
        # The foreign arrival tightens the burst horizon immediately.
        assert sim._xmin == 5.0

    def test_same_shard_delivery_stays_put(self):
        sim = ShardedSimulation(nshards=2, lookahead=1.0)
        sim.set_shard_map({0: 0, 1: 1})
        sim.deliver_timeout(0, 5.0)
        assert len(sim._heaps[1]) == 0
        assert sim._xmin == float("inf")

    def test_unmapped_nodes_default_to_shard_zero(self):
        sim = ShardedSimulation(nshards=2, lookahead=1.0)
        sim.deliver_timeout(99, 1.0)
        assert len(sim._heaps[1]) == 0


# -- kernel-level burst/merged equivalence ------------------------------

def _pingpong(sim, log, rounds=20, gap=1.5):
    """Two 'nodes' exchanging cross-shard deliveries ``gap`` apart
    (> lookahead), logging (time, node) at each arrival."""
    def arrive(node, k):
        def cb(_ev):
            log.append((sim.now, node))
            if k < rounds:
                ev = sim.deliver_timeout(1 - node, gap)
                ev._cb1 = arrive(1 - node, k + 1)
        return cb

    ev = sim.deliver_timeout(0, 1.0)
    ev._cb1 = arrive(0, 0)


class TestKernelEquivalence:
    def test_burst_pingpong_matches_single_kernel(self):
        ref_log = []
        ref = Simulation(seed=1)
        _pingpong(ref, ref_log)
        ref.run()

        log = []
        sim = ShardedSimulation(seed=1, nshards=2, lookahead=1.0)
        sim.set_shard_map({0: 0, 1: 1})
        _pingpong(sim, log)
        sim.run()
        assert log == ref_log
        assert sim.now == ref.now

    def test_zero_lookahead_falls_back_to_merged(self):
        """A zero-latency fabric gives no safe horizon: the kernel must
        run merged (single-shard-identical order) instead of bursting."""
        log = []
        sim = ShardedSimulation(seed=1, nshards=2, lookahead=0.0)
        sim.set_shard_map({0: 0, 1: 1})
        _pingpong(sim, log, gap=0.0)

        ref_log = []
        ref = Simulation(seed=1)
        _pingpong(ref, ref_log, gap=0.0)
        ref.run()
        sim.run()
        assert log == ref_log

    def test_until_bound_runs_merged_and_stops_on_time(self):
        log = []
        sim = ShardedSimulation(seed=1, nshards=2, lookahead=1.0)
        sim.set_shard_map({0: 0, 1: 1})
        _pingpong(sim, log)
        sim.run(until=5.0)
        assert sim.now == 5.0
        assert all(t <= 5.0 for t, _ in log)
        sim.run()  # resumes to completion
        assert len(log) == 21


# -- heap compaction ported to sub-kernels ------------------------------

class TestShardedHeapCompaction:
    def test_compaction_spans_all_shard_heaps(self):
        """Dead entries parked in a *foreign* shard heap must be
        compacted too — in place, so the inlined push paths keep
        hitting the same list objects."""
        sim = ShardedSimulation(nshards=2, lookahead=1.0)
        sim.set_shard_map({0: 0, 1: 1})
        done = []

        def body():
            doomed = [sim.deliver_timeout(1, 100.0) for _ in range(600)]
            heap1 = sim._heaps[1]
            assert len(heap1) >= 600
            yield sim.timeout(1.0)
            for t in doomed:
                t.abandon()
            assert sim._ndead < 600       # compaction ran
            assert sim._heaps[1] is heap1  # in place, not rebound
            assert len(heap1) < 600
            yield sim.timeout(1.0)
            done.append(sim.now)

        sim.spawn(body())
        sim.run()
        assert done == [2.0]
        assert sim.now == 2.0  # dead entries never advanced the clock

    def test_compaction_mid_burst_keeps_later_events(self):
        sim = ShardedSimulation(nshards=2, lookahead=1.0)
        sim.set_shard_map({0: 0, 1: 1})
        done = []

        def body():
            doomed = [sim.timeout(100.0) for _ in range(600)]
            yield sim.timeout(1.0)
            for t in doomed:
                t.abandon()
            yield sim.timeout(1.0)  # scheduled post-compaction
            done.append(sim.now)

        sim.spawn(body())
        sim.run()
        assert done == [2.0]


# -- end-to-end KAP equivalence -----------------------------------------

def _cfg(**kw):
    return KapConfig(**kw)


class TestKapEquivalence:
    # Three scales: tiny, the golden paper point, and a mid-size
    # config with different value size / sync mode.
    SCALES = {
        "tiny": dict(nnodes=8, procs_per_node=2, value_size=64,
                     nputs=2, naccess=2, seed=3),
        "golden": dict(nnodes=16, procs_per_node=16, value_size=64,
                       seed=1),
        "mid": dict(nnodes=32, procs_per_node=4, value_size=256,
                    seed=7),
    }

    @pytest.mark.parametrize("name", sorted(SCALES))
    def test_merged_fingerprint_identity(self, name):
        """With the fingerprint hook installed the sharded kernel runs
        merged: the event stream must be byte-identical to one shard."""
        kw = self.SCALES[name]
        one = run_kap(_cfg(**kw), sanitize=True)
        four = run_kap(_cfg(**kw, shards=4), sanitize=True)
        assert four.event_fingerprint == one.event_fingerprint
        assert four.events == one.events
        assert four.sanitizer_findings == []
        if name == "golden":
            assert one.event_fingerprint == GOLDEN_KAP_256

    @pytest.mark.parametrize("name", sorted(SCALES))
    def test_burst_results_identical(self, name):
        """Hook-free runs burst; every observable must still match the
        single-shard run exactly."""
        kw = self.SCALES[name]
        one = run_kap(_cfg(**kw))
        four = run_kap(_cfg(**kw, shards=4))
        assert four.events == one.events
        assert four.bytes_sent == one.bytes_sent
        assert four.total_time == one.total_time
        assert four.max_producer_latency == one.max_producer_latency
        assert four.max_sync_latency == one.max_sync_latency
        assert four.max_consumer_latency == one.max_consumer_latency
        assert four.plane_bytes == one.plane_bytes

    def test_burst_with_dedup_matches_merged_dedup(self):
        """The optimized bench mode (dedup + shards) must agree with
        its own merged (sanitized) run on seed-determined counts."""
        kw = dict(nnodes=16, procs_per_node=16, value_size=64, seed=1,
                  dedup=True)
        burst = run_kap(_cfg(**kw, shards=4))
        merged = run_kap(_cfg(**kw, shards=4), sanitize=True)
        assert burst.events == merged.events
        assert burst.bytes_sent == merged.bytes_sent
        assert burst.total_time == merged.total_time
