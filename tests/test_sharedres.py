"""Tests for the max-min fair shared-resource model and bandwidth
co-scheduling charges."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.resource import AllocationRequest, ResourcePool, build_cluster_graph
from repro.resource import types as rt
from repro.resource.pool import AllocationError
from repro.sim import Simulation
from repro.sim.sharedres import SharedResource, max_min_rates


class TestMaxMinRates:
    def test_undersubscribed_everyone_satisfied(self):
        assert max_min_rates(100.0, [10, 20, 30]) == [10, 20, 30]

    def test_oversubscribed_equal_split(self):
        assert max_min_rates(90.0, [100, 100, 100]) == [30, 30, 30]

    def test_small_demand_satisfied_leftover_shared(self):
        rates = max_min_rates(100.0, [10, 1000, 1000])
        assert rates == [10, 45, 45]

    def test_empty(self):
        assert max_min_rates(100.0, []) == []

    @given(capacity=st.floats(1, 1e6),
           demands=st.lists(st.floats(0.1, 1e6), min_size=1, max_size=10))
    @settings(max_examples=200, deadline=None)
    def test_properties(self, capacity, demands):
        rates = max_min_rates(capacity, demands)
        assert all(0 < r <= d * (1 + 1e-9)
                   for r, d in zip(rates, demands))
        assert sum(rates) <= capacity * (1 + 1e-9)
        # Work-conserving: either everyone is satisfied, or capacity
        # is fully used.
        if any(r < d * (1 - 1e-9) for r, d in zip(rates, demands)):
            assert sum(rates) == pytest.approx(capacity)


class TestSharedResource:
    def test_solo_transfer_at_full_demand(self):
        sim = Simulation(seed=0)
        fs = SharedResource(sim, capacity=100.0)

        def writer():
            elapsed = yield from fs.transfer(50.0, demand=10.0)
            return elapsed

        proc = sim.spawn(writer())
        assert sim.run_until_complete(proc) == pytest.approx(5.0)

    def test_contention_stretches_transfers(self):
        sim = Simulation(seed=0)
        fs = SharedResource(sim, capacity=100.0)
        spans = {}

        def writer(tag):
            t = yield from fs.transfer(100.0, demand=100.0, label=tag)
            spans[tag] = t

        sim.spawn(writer("a"))
        sim.spawn(writer("b"))
        sim.run()
        # Two flows at 50 each: both take 2 s instead of 1.
        assert spans["a"] == pytest.approx(2.0)
        assert spans["b"] == pytest.approx(2.0)

    def test_staggered_flows_repace(self):
        sim = Simulation(seed=0)
        fs = SharedResource(sim, capacity=100.0)
        done = {}

        def early():
            t = yield from fs.transfer(100.0, demand=100.0)
            done["early"] = sim.now

        def late():
            yield sim.timeout(0.5)
            t = yield from fs.transfer(100.0, demand=100.0)
            done["late"] = sim.now

        sim.spawn(early())
        sim.spawn(late())
        sim.run()
        # early: 0.5 s at 100, then shares 50/50.  Remaining 50 units at
        # 50/s until early finishes at t=1.5; late then has 50 left at
        # full rate -> t=2.0.
        assert done["early"] == pytest.approx(1.5)
        assert done["late"] == pytest.approx(2.0)

    def test_small_flow_unharmed_by_elephants(self):
        sim = Simulation(seed=0)
        fs = SharedResource(sim, capacity=100.0)
        spans = {}

        def elephant(tag):
            spans[tag] = yield from fs.transfer(1000.0, demand=100.0)

        def mouse():
            spans["mouse"] = yield from fs.transfer(1.0, demand=5.0)

        sim.spawn(elephant("e1"))
        sim.spawn(elephant("e2"))
        sim.spawn(mouse())
        sim.run()
        # Max-min: the mouse's 5 u/s demand is fully satisfied.
        assert spans["mouse"] == pytest.approx(1.0 / 5.0)

    def test_zero_amount_is_instant(self):
        sim = Simulation(seed=0)
        fs = SharedResource(sim, capacity=10.0)

        def noop():
            return (yield from fs.transfer(0.0, demand=1.0))

        proc = sim.spawn(noop())
        assert sim.run_until_complete(proc) == 0.0

    def test_bad_args_rejected(self):
        sim = Simulation(seed=0)
        with pytest.raises(ValueError):
            SharedResource(sim, capacity=0.0)
        fs = SharedResource(sim, capacity=1.0)
        with pytest.raises(ValueError):
            list(fs.transfer(1.0, demand=0.0))

    def test_stats(self):
        sim = Simulation(seed=0)
        fs = SharedResource(sim, capacity=100.0)

        def writer():
            yield from fs.transfer(10.0, demand=10.0)

        sim.spawn(writer())
        sim.spawn(writer())
        sim.run()
        assert fs.total_transferred == pytest.approx(20.0)
        assert fs.peak_flows == 2
        assert fs.active_flows == 0

    @given(flows=st.lists(
        st.tuples(st.floats(0.0, 2.0),       # start offset
                  st.floats(1.0, 50.0),      # amount
                  st.floats(1.0, 100.0)),    # demand
        min_size=1, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_conservation_property(self, flows):
        """Every transfer completes and total moved matches the ask."""
        sim = Simulation(seed=0)
        fs = SharedResource(sim, capacity=40.0)

        def writer(delay, amount, demand):
            yield sim.timeout(delay)
            yield from fs.transfer(amount, demand)

        procs = [sim.spawn(writer(*f)) for f in flows]
        sim.run()
        assert all(p.ok for p in procs)
        assert fs.total_transferred == pytest.approx(
            sum(a for _d, a, _dm in flows), rel=1e-6)


class TestBandwidthCharges:
    def _graph_with_fs(self):
        graph = build_cluster_graph("c", 1, 2, sockets=1,
                                    cores_per_socket=8)
        fs = graph.add(rt.FILESYSTEM, "lustre", parent=graph.root_id)
        bw = graph.add(rt.BANDWIDTH, "lustre-bw", parent=fs.rid,
                       capacity=100.0)
        return graph, bw.rid

    def test_bandwidth_reserved_and_refunded(self):
        graph, bw = self._graph_with_fs()
        pool = ResourcePool(graph)
        pool.allocate("io1", AllocationRequest(
            ncores=4, extra_charges=((bw, 60.0),)))
        assert graph.by_id[bw].used == 60.0
        pool.release("io1")
        assert graph.by_id[bw].used == 0.0

    def test_oversubscription_rejected(self):
        graph, bw = self._graph_with_fs()
        pool = ResourcePool(graph)
        pool.allocate("io1", AllocationRequest(
            ncores=4, extra_charges=((bw, 60.0),)))
        with pytest.raises(AllocationError, match="lustre-bw"):
            pool.allocate("io2", AllocationRequest(
                ncores=4, extra_charges=((bw, 60.0),)))

    def test_failed_charge_leaves_no_residue(self):
        graph, bw = self._graph_with_fs()
        pool = ResourcePool(graph)
        with pytest.raises(AllocationError):
            pool.allocate("io", AllocationRequest(
                ncores=4, extra_charges=((bw, 1000.0),)))
        assert graph.by_id[bw].used == 0.0
        assert pool.total_free_cores() == 16

    def test_invalid_charge_rejected(self):
        with pytest.raises(ValueError):
            AllocationRequest(ncores=1, extra_charges=((1, -5.0),))


class TestProportionalPolicy:
    def test_rates_scale_with_demand(self):
        from repro.sim.sharedres import proportional_rates
        rates = proportional_rates(10.0, [9.0, 1.0])
        assert rates == [9.0, 1.0]  # undersubscribed: all satisfied
        rates = proportional_rates(10.0, [90.0, 10.0])
        assert rates == [9.0, 1.0]  # oversubscribed: proportional

    def test_bursts_squeeze_small_flows(self):
        """Unlike max-min, proportional sharing lets elephants crush
        mice — the disruption mode the paper's intro describes."""
        sim = Simulation(seed=0)
        fs = SharedResource(sim, capacity=10.0, policy="proportional")
        spans = {}

        def elephant(tag):
            spans[tag] = yield from fs.transfer(100.0, demand=10.0)

        def mouse():
            spans["mouse"] = yield from fs.transfer(1.0, demand=1.0)

        for tag in ("e1", "e2", "e3"):
            sim.spawn(elephant(tag))
        sim.spawn(mouse())
        sim.run()
        # demand 31 over capacity 10: mouse rate = 10/31 ~ 0.32 -> ~3.1x
        assert spans["mouse"] > 2.5

    def test_maxmin_protects_where_proportional_does_not(self):
        def mouse_span(policy):
            sim = Simulation(seed=0)
            fs = SharedResource(sim, capacity=10.0, policy=policy)
            spans = {}

            def elephant():
                yield from fs.transfer(100.0, demand=10.0)

            def mouse():
                spans["m"] = yield from fs.transfer(1.0, demand=1.0)

            sim.spawn(elephant())
            sim.spawn(elephant())
            sim.spawn(mouse())
            sim.run()
            return spans["m"]

        assert mouse_span("maxmin") < mouse_span("proportional")

    def test_unknown_policy_rejected(self):
        sim = Simulation(seed=0)
        with pytest.raises(ValueError):
            SharedResource(sim, capacity=1.0, policy="lottery")
