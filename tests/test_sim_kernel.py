"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim.kernel import (AllOf, AnyOf, Channel, Event, Interrupt,
                              Process, Simulation, SimulationError, Timeout)


@pytest.fixture
def sim():
    return Simulation(seed=42)


class TestEvent:
    def test_starts_pending(self, sim):
        ev = sim.event()
        assert not ev.triggered
        assert not ev.processed

    def test_value_before_trigger_raises(self, sim):
        ev = sim.event()
        with pytest.raises(SimulationError):
            _ = ev.value

    def test_succeed_delivers_value(self, sim):
        ev = sim.event()
        ev.succeed(123)
        sim.run()
        assert ev.processed and ev.value == 123

    def test_double_trigger_rejected(self, sim):
        ev = sim.event()
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)

    def test_fail_requires_exception(self, sim):
        ev = sim.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")

    def test_fail_raises_on_value_access(self, sim):
        ev = sim.event()
        ev.fail(ValueError("boom"))
        sim.run()
        with pytest.raises(ValueError):
            _ = ev.value

    def test_callback_after_processed_runs_immediately(self, sim):
        ev = sim.event()
        ev.succeed(7)
        sim.run()
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        assert seen == [7]

    def test_succeed_with_delay(self, sim):
        ev = sim.event()
        ev.succeed("late", delay=5.0)
        t = []
        ev.add_callback(lambda e: t.append(sim.now))
        sim.run()
        assert t == [5.0]


class TestTimeout:
    def test_fires_at_delay(self, sim):
        times = []
        sim.timeout(2.5).add_callback(lambda e: times.append(sim.now))
        sim.run()
        assert times == [2.5]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.timeout(-1.0)

    def test_carries_value(self, sim):
        ev = sim.timeout(1.0, value="v")
        sim.run()
        assert ev.value == "v"

    def test_zero_delay_fires_now(self, sim):
        ev = sim.timeout(0.0)
        sim.run()
        assert ev.processed and sim.now == 0.0


class TestProcess:
    def test_sequential_timeouts_advance_clock(self, sim):
        log = []

        def proc():
            yield sim.timeout(1.0)
            log.append(sim.now)
            yield sim.timeout(2.0)
            log.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert log == [1.0, 3.0]

    def test_return_value_via_join(self, sim):
        def child():
            yield sim.timeout(1.0)
            return "done"

        def parent():
            result = yield sim.spawn(child())
            return result

        p = sim.spawn(parent())
        assert sim.run_until_complete(p) == "done"

    def test_yield_non_event_raises(self, sim):
        def bad():
            yield 42

        sim.spawn(bad())
        with pytest.raises(SimulationError):
            sim.run()

    def test_exception_propagates_in_strict_mode(self, sim):
        def bad():
            yield sim.timeout(1.0)
            raise RuntimeError("kaput")

        sim.spawn(bad())
        with pytest.raises(RuntimeError):
            sim.run()

    def test_exception_contained_when_not_strict(self):
        sim = Simulation(strict=False)

        def bad():
            yield sim.timeout(1.0)
            raise RuntimeError("kaput")

        p = sim.spawn(bad())
        sim.run()
        assert p.triggered and not p.ok

    def test_contained_process_fails_event_in_strict_mode(self, sim):
        def bad():
            yield sim.timeout(1.0)
            raise RuntimeError("kaput")

        def watcher():
            try:
                yield sim.spawn(bad(), contain=True)
            except RuntimeError as exc:
                return f"caught {exc}"

        p = sim.spawn(watcher())
        assert sim.run_until_complete(p) == "caught kaput"

    def test_interrupt_wakes_waiter(self, sim):
        def sleeper():
            try:
                yield sim.timeout(100.0)
            except Interrupt as it:
                return ("interrupted", it.cause)

        p = sim.spawn(sleeper())
        sim.timeout(1.0).add_callback(lambda e: p.interrupt("why"))
        assert sim.run_until_complete(p) == ("interrupted", "why")
        assert sim.now == pytest.approx(1.0)

    def test_interrupt_finished_process_raises(self, sim):
        def quick():
            yield sim.timeout(0.1)

        p = sim.spawn(quick())
        sim.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_failed_event_throws_into_waiter(self, sim):
        ev = sim.event()

        def waiter():
            try:
                yield ev
            except ValueError:
                return "caught"

        p = sim.spawn(waiter())
        ev.fail(ValueError("x"), delay=1.0)
        assert sim.run_until_complete(p) == "caught"

    def test_is_alive_transitions(self, sim):
        def proc():
            yield sim.timeout(1.0)

        p = sim.spawn(proc())
        assert p.is_alive
        sim.run()
        assert not p.is_alive


class TestChannel:
    def test_fifo_order(self, sim):
        ch = sim.channel()
        got = []

        def consumer():
            for _ in range(3):
                item = yield ch.get()
                got.append(item)

        sim.spawn(consumer())
        for i in range(3):
            ch.put(i)
        sim.run()
        assert got == [0, 1, 2]

    def test_get_blocks_until_put(self, sim):
        ch = sim.channel()
        times = []

        def consumer():
            yield ch.get()
            times.append(sim.now)

        def producer():
            yield sim.timeout(4.0)
            ch.put("x")

        sim.spawn(consumer())
        sim.spawn(producer())
        sim.run()
        assert times == [4.0]

    def test_multiple_getters_served_in_order(self, sim):
        ch = sim.channel()
        got = []

        def consumer(tag):
            item = yield ch.get()
            got.append((tag, item))

        sim.spawn(consumer("a"))
        sim.spawn(consumer("b"))
        ch.put(1)
        ch.put(2)
        sim.run()
        assert got == [("a", 1), ("b", 2)]

    def test_len_and_peek(self, sim):
        ch = sim.channel()
        ch.put("x")
        ch.put("y")
        assert len(ch) == 2
        assert ch.peek_all() == ["x", "y"]


class TestCombinators:
    def test_all_of_collects_values_in_order(self, sim):
        evs = [sim.timeout(3.0, value="c"), sim.timeout(1.0, value="a")]
        combo = sim.all_of(evs)
        sim.run()
        assert combo.value == ["c", "a"]
        assert sim.now == 3.0

    def test_all_of_empty_fires_immediately(self, sim):
        combo = sim.all_of([])
        assert combo.triggered and combo.value == []

    def test_all_of_fails_on_first_failure(self, sim):
        good = sim.timeout(1.0)
        bad = sim.event()
        bad.fail(ValueError("x"), delay=0.5)
        combo = sim.all_of([good, bad])

        def waiter():
            try:
                yield combo
            except ValueError:
                return "failed"

        p = sim.spawn(waiter())
        assert sim.run_until_complete(p) == "failed"

    def test_any_of_returns_winner(self, sim):
        evs = [sim.timeout(5.0, value="slow"), sim.timeout(1.0, value="fast")]
        combo = sim.any_of(evs)
        sim.run()
        assert combo.value == (1, "fast")

    def test_any_of_empty_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.any_of([])


class TestSimulationLoop:
    def test_run_until_stops_clock(self, sim):
        fired = []
        sim.timeout(10.0).add_callback(lambda e: fired.append(1))
        t = sim.run(until=5.0)
        assert t == 5.0 and not fired
        sim.run()
        assert fired and sim.now == 10.0

    def test_simultaneous_events_run_in_schedule_order(self, sim):
        order = []
        for i in range(10):
            sim.timeout(1.0).add_callback(lambda e, i=i: order.append(i))
        sim.run()
        assert order == list(range(10))

    def test_event_budget_enforced(self, sim):
        def spinner():
            while True:
                yield sim.timeout(1.0)

        sim.spawn(spinner())
        with pytest.raises(SimulationError):
            sim.run(max_events=50)

    def test_run_until_complete_detects_deadlock(self, sim):
        never = sim.event()

        def stuck():
            yield never

        p = sim.spawn(stuck())
        with pytest.raises(SimulationError, match="deadlock"):
            sim.run_until_complete(p)

    def test_event_count_is_deterministic(self):
        def run_once():
            sim = Simulation(seed=7)

            def worker(i):
                yield sim.timeout(sim.rng.random())
                yield sim.timeout(0.5)

            for i in range(20):
                sim.spawn(worker(i))
            sim.run()
            return sim.event_count, sim.now

        assert run_once() == run_once()


class TestAbandon:
    def test_abandoned_timeout_never_fires(self, sim):
        fired = []
        ev = sim.timeout(5.0)
        ev.add_callback(lambda e: fired.append(1))
        ev.abandon()
        sim.run()
        assert not fired

    def test_abandoned_event_does_not_advance_clock(self, sim):
        sim.timeout(1.0)
        long = sim.timeout(100.0)
        long.abandon()
        sim.run()
        assert sim.now == 1.0

    def test_abandon_loser_of_any_of(self, sim):
        def proc():
            fast = sim.timeout(1.0, value="fast")
            slow = sim.timeout(50.0, value="slow")
            which, value = yield sim.any_of([fast, slow])
            slow.abandon()
            return value

        p = sim.spawn(proc())
        assert sim.run_until_complete(p) == "fast"
        sim.run()
        assert sim.now == 1.0  # the 50 s timeout left no trace

    def test_run_until_complete_skips_dead_events(self, sim):
        dead = sim.timeout(0.5)
        dead.abandon()

        def proc():
            yield sim.timeout(1.0)
            return "done"

        p = sim.spawn(proc())
        assert sim.run_until_complete(p) == "done"


class TestChannelCancelledGetters:
    """Regression tests for the in-place skip of getters that were
    triggered by something other than a put (e.g. a shutdown path
    flushing a pending get): ``put`` must hand the item to the oldest
    *still-pending* getter, preserving FIFO among the survivors."""

    def test_put_skips_externally_triggered_getter(self, sim):
        ch = sim.channel()
        g1, g2, g3 = ch.get(), ch.get(), ch.get()
        g2.succeed("flushed")  # cancelled out of band while queued
        ch.put("x")
        ch.put("y")
        sim.run()
        assert g1.value == "x"
        assert g2.value == "flushed"
        assert g3.value == "y"

    def test_item_queued_when_every_getter_cancelled(self, sim):
        ch = sim.channel()
        g1, g2 = ch.get(), ch.get()
        g1.succeed("a")
        g2.succeed("b")
        ch.put("kept")
        sim.run()
        assert ch.peek_all() == ["kept"]
        assert ch.get().value == "kept"


class TestHotPathMachinery:
    def test_timeout_name_rendered_lazily(self, sim):
        t = sim.timeout(0.25)
        assert type(t._name) is tuple  # not rendered yet
        assert t.name == "timeout(0.25)"  # == old f"timeout({0.25:g})"
        assert type(t._name) is str  # memoized after first read

    def test_lazy_name_matches_eager_format(self, sim):
        for delay in (0.0, 1.3e-6, 0.05, 2.0, 123456.789):
            assert sim.timeout(delay).name == f"timeout({delay:g})"
        ch = sim.channel(name="inbox:3:default")
        assert ch.get().name == "get:inbox:3:default"

    def test_callbacks_run_in_registration_order(self, sim):
        order = []
        ev = sim.timeout(0.0)
        for tag in "abcd":  # first lands in _cb1, rest overflow
            ev.add_callback(lambda e, tag=tag: order.append(tag))
        sim.run()
        assert order == list("abcd")

    def test_discard_callback_from_either_tier(self, sim):
        order = []

        def make(tag):
            return lambda e: order.append(tag)

        a, b, c = make("a"), make("b"), make("c")
        ev = sim.timeout(0.0)
        for cb in (a, b, c):
            ev.add_callback(cb)
        ev._discard_callback(a)  # the _cb1 slot
        ev._discard_callback(c)  # the overflow list
        sim.run()
        assert order == ["b"]

    def test_add_callback_on_abandoned_event_rejected(self, sim):
        ev = sim.timeout(1.0)
        ev.abandon()
        with pytest.raises(SimulationError):
            ev.add_callback(lambda e: None)

    def test_any_of_detaches_loser_callbacks(self, sim):
        winner = sim.timeout(1.0, value="w")
        loser = sim.event()
        combo = sim.any_of([loser, winner])
        assert loser._cb1 is not None  # watcher attached
        sim.run()
        assert combo.value == (1, "w")
        assert loser._cb1 is None and not loser.callbacks  # detached
        loser.succeed("late")  # losers stay usable after the race
        sim.run()
        assert combo.value == (1, "w")
        assert loser.value == "late"


class TestHeapCompaction:
    def test_compaction_mid_run_keeps_later_events(self, sim):
        """Abandoning >512 scheduled events mid-run triggers heap
        compaction; events scheduled afterwards must still be seen by
        the already-running loop (compaction mutates the heap list in
        place — rebinding it would strand them in a new list)."""
        done = []

        def body():
            doomed = [sim.timeout(100.0) for _ in range(600)]
            yield sim.timeout(1.0)
            for t in doomed:
                t.abandon()
            assert sim._ndead < 600  # compaction ran at least once
            yield sim.timeout(1.0)  # scheduled post-compaction
            done.append(sim.now)

        sim.spawn(body())
        sim.run()
        assert done == [2.0]
        assert sim.now == 2.0  # dead entries never advanced the clock

    def test_compaction_during_until_run(self, sim):
        done = []

        def body():
            doomed = [sim.timeout(50.0) for _ in range(600)]
            yield sim.timeout(1.0)
            for t in doomed:
                t.abandon()
            yield sim.timeout(1.0)
            done.append(sim.now)

        sim.spawn(body())
        sim.run(until=10.0)
        assert done == [2.0]
        assert sim.now == 10.0
