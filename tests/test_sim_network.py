"""Unit tests for the network cost model and cluster construction."""

import pytest

from repro.sim.cluster import Cluster, make_cluster, zin_like_params
from repro.sim.kernel import Simulation
from repro.sim.network import Network, NetworkParams
from repro.sim.node import Node, NodeSpec


@pytest.fixture
def net():
    sim = Simulation(seed=0)
    network = Network(sim, NetworkParams(
        latency=1e-6, bandwidth=1e9, per_message_overhead=0.0))
    for i in range(4):
        network.register(i)
    return sim, network


class TestNic:
    def test_delay_is_serialization_plus_latency(self, net):
        sim, network = net
        delay = network.nic(0).send_delay(1000)
        # 1000 B / 1 GB/s = 1 us, + 1 us latency
        assert delay == pytest.approx(2e-6)

    def test_back_to_back_sends_serialize(self, net):
        sim, network = net
        nic = network.nic(0)
        d1 = nic.send_delay(1000)
        d2 = nic.send_delay(1000)
        assert d2 == pytest.approx(d1 + 1e-6)  # second waits for the first

    def test_stats_accumulate(self, net):
        _, network = net
        nic = network.nic(0)
        nic.send_delay(100)
        nic.send_delay(200)
        assert nic.bytes_sent == 300 and nic.msgs_sent == 2


class TestNetworkDelivery:
    def test_send_delivers_to_inbox(self, net):
        sim, network = net
        network.send(0, 1, "hello", 100)
        sim.run()
        assert network.inbox(1).peek_all() == ["hello"]
        assert network.delivered == 1

    def test_fifo_between_same_pair(self, net):
        sim, network = net
        for i in range(5):
            network.send(0, 1, i, 1000)
        sim.run()
        assert network.inbox(1).peek_all() == [0, 1, 2, 3, 4]

    def test_loopback_uses_ipc_cost(self, net):
        sim, network = net
        network.send(2, 2, "self", 100)
        sim.run()
        assert network.inbox(2).peek_all() == ["self"]
        # Loopback does not touch the NIC.
        assert network.nic(2).msgs_sent == 0

    def test_send_to_dead_node_drops(self, net):
        sim, network = net
        drops = []
        network.drop_hook = lambda s, d, p: drops.append((s, d, p))
        network.fail_node(1)
        network.send(0, 1, "lost", 100)
        sim.run()
        assert network.dropped == 1 and len(network.inbox(1)) == 0
        assert drops == [(0, 1, "lost")]

    def test_send_from_dead_node_drops(self, net):
        sim, network = net
        network.fail_node(0)
        network.send(0, 1, "lost", 100)
        sim.run()
        assert network.dropped == 1

    def test_revive_restores_delivery(self, net):
        sim, network = net
        network.fail_node(1)
        network.send(0, 1, "lost", 10)
        sim.run()
        network.revive_node(1)
        network.send(0, 1, "found", 10)
        sim.run()
        assert network.inbox(1).peek_all() == ["found"]

    def test_duplicate_registration_rejected(self, net):
        _, network = net
        with pytest.raises(ValueError):
            network.register(0)

    def test_total_bytes(self, net):
        sim, network = net
        network.send(0, 1, "a", 500)
        network.send(2, 3, "b", 300)
        sim.run()
        assert network.total_bytes_sent() == 800


class TestNode:
    def test_default_spec_matches_paper_nodes(self):
        node = Node(0)
        assert node.cores == 16
        assert node.spec.sockets == 2
        assert node.spec.memory_bytes == 32 * 2**30

    def test_core_claim_release(self):
        node = Node(0, NodeSpec(cores=4))
        node.claim_cores(3)
        assert node.cores_free == 1
        node.release_cores(2)
        assert node.cores_free == 3

    def test_oversubscription_rejected(self):
        node = Node(0, NodeSpec(cores=4))
        with pytest.raises(ValueError):
            node.claim_cores(5)

    def test_over_release_rejected(self):
        node = Node(0, NodeSpec(cores=4))
        node.claim_cores(2)
        with pytest.raises(ValueError):
            node.release_cores(3)

    def test_power_draw_scales_with_busy_cores(self):
        node = Node(0, NodeSpec(cores=4, idle_watts=100, core_watts=10))
        assert node.power_draw() == 100
        node.claim_cores(2)
        assert node.power_draw() == 120


class TestCluster:
    def test_make_cluster_registers_all_nodes(self):
        cluster = make_cluster(8)
        assert len(cluster) == 8
        for i in range(8):
            assert cluster.network.is_alive(i)

    def test_fail_and_revive(self):
        cluster = make_cluster(4)
        cluster.fail_node(2)
        assert not cluster.node(2).alive
        assert cluster.alive_ids() == [0, 1, 3]
        cluster.revive_node(2)
        assert cluster.alive_ids() == [0, 1, 2, 3]

    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError):
            make_cluster(0)

    def test_zin_params_shape(self):
        p = zin_like_params()
        assert p.latency < 1e-5
        assert p.bandwidth > 1e9
