"""Tests for statistics collection, tracing, and KAP result handling."""

import numpy as np
import pytest

from repro.sim.trace import StatSeries, Summary, Tracer
from repro.kap.config import KapConfig
from repro.kap.results import KapResult


class TestStatSeries:
    def test_add_and_len(self):
        s = StatSeries("lat")
        s.add(1.0)
        s.add(2.0)
        assert len(s) == 2

    def test_extend(self):
        s = StatSeries()
        s.extend([1, 2, 3])
        assert len(s) == 3
        assert s.values.dtype == np.float64

    def test_summary_fields(self):
        s = StatSeries()
        s.extend(range(1, 101))
        summary = s.summary()
        assert summary.count == 100
        assert summary.min == 1.0 and summary.max == 100.0
        assert summary.mean == pytest.approx(50.5)
        assert summary.p50 == pytest.approx(50.5)
        assert summary.p95 == pytest.approx(95.05)
        assert summary.p99 > summary.p95

    def test_empty_summary_raises(self):
        with pytest.raises(ValueError):
            StatSeries("empty").summary()

    def test_summary_as_dict(self):
        s = StatSeries()
        s.add(5.0)
        d = s.summary().as_dict()
        assert d["count"] == 1 and d["max"] == 5.0
        assert set(d) == {"count", "max", "min", "mean", "p50", "p95",
                          "p99"}

    def test_values_returns_copy_like_array(self):
        s = StatSeries()
        s.add(1.0)
        arr = s.values
        arr[0] = 99.0
        assert s.values[0] == 1.0


class TestTracer:
    def test_record_and_filter(self):
        t = Tracer()
        t.record(0.0, "send", {"to": 1})
        t.record(1.0, "recv", {"from": 0})
        t.record(2.0, "send", {"to": 2})
        assert len(t.records()) == 3
        assert len(t.records("send")) == 2

    def test_capacity_bounds_memory(self):
        t = Tracer(capacity=5)
        for i in range(20):
            t.record(float(i), "e", i)
        records = t.records()
        assert len(records) == 5
        assert records[0][2] == 15

    def test_disabled_tracer_drops(self):
        t = Tracer()
        t.enabled = False
        t.record(0.0, "e")
        assert t.records() == []

    def test_fingerprint_detects_order(self):
        t1, t2 = Tracer(), Tracer()
        t1.record(0.0, "a")
        t1.record(1.0, "b")
        t2.record(1.0, "b")
        t2.record(0.0, "a")
        assert t1.fingerprint() != t2.fingerprint()

    def test_fingerprint_equal_for_equal_traces(self):
        t1, t2 = Tracer(), Tracer()
        for t in (t1, t2):
            t.record(0.5, "x", {"k": 1})
            t.record(0.7, "y", [1, 2])
        assert t1.fingerprint() == t2.fingerprint()

    def test_clear(self):
        t = Tracer()
        t.record(0.0, "e")
        t.clear()
        assert t.records() == []


class TestKapResult:
    def test_empty_phases_report_zero(self):
        r = KapResult(KapConfig(nnodes=1, procs_per_node=1))
        assert r.max_producer_latency == 0.0
        assert r.max_sync_latency == 0.0
        assert r.max_consumer_latency == 0.0

    def test_summaries_none_for_empty(self):
        r = KapResult(KapConfig(nnodes=1, procs_per_node=1))
        assert r.summaries() == {"producer": None, "sync": None,
                                 "consumer": None}

    def test_max_metrics_track_series(self):
        r = KapResult(KapConfig(nnodes=1, procs_per_node=1))
        r.producer.extend([0.1, 0.5, 0.3])
        r.sync.add(1.0)
        assert r.max_producer_latency == 0.5
        assert r.max_sync_latency == 1.0
        assert r.summaries()["producer"].count == 3
