"""Tests for statistics collection, tracing, and KAP result handling."""

import json

import numpy as np
import pytest

from repro.sim.trace import StatSeries, Summary, Tracer
from repro.kap.config import KapConfig
from repro.kap.results import KapResult
from repro.obs.metrics import (MetricsRegistry, parse_prometheus_text,
                               snapshot_to_prometheus)
from repro.obs.span import SpanTracer
from repro.stats import validate_trace

from .chaos import run_chaos_workload, run_job_chaos_workload


class TestStatSeries:
    def test_add_and_len(self):
        s = StatSeries("lat")
        s.add(1.0)
        s.add(2.0)
        assert len(s) == 2

    def test_extend(self):
        s = StatSeries()
        s.extend([1, 2, 3])
        assert len(s) == 3
        assert s.values.dtype == np.float64

    def test_summary_fields(self):
        s = StatSeries()
        s.extend(range(1, 101))
        summary = s.summary()
        assert summary.count == 100
        assert summary.min == 1.0 and summary.max == 100.0
        assert summary.mean == pytest.approx(50.5)
        assert summary.p50 == pytest.approx(50.5)
        assert summary.p95 == pytest.approx(95.05)
        assert summary.p99 > summary.p95

    def test_empty_summary_raises(self):
        with pytest.raises(ValueError):
            StatSeries("empty").summary()

    def test_summary_as_dict(self):
        s = StatSeries()
        s.add(5.0)
        d = s.summary().as_dict()
        assert d["count"] == 1 and d["max"] == 5.0
        assert set(d) == {"count", "max", "min", "mean", "p50", "p95",
                          "p99"}

    def test_values_returns_copy_like_array(self):
        s = StatSeries()
        s.add(1.0)
        arr = s.values
        arr[0] = 99.0
        assert s.values[0] == 1.0


class TestTracer:
    def test_record_and_filter(self):
        t = Tracer()
        t.record(0.0, "send", {"to": 1})
        t.record(1.0, "recv", {"from": 0})
        t.record(2.0, "send", {"to": 2})
        assert len(t.records()) == 3
        assert len(t.records("send")) == 2

    def test_capacity_bounds_memory(self):
        t = Tracer(capacity=5)
        for i in range(20):
            t.record(float(i), "e", i)
        records = t.records()
        assert len(records) == 5
        assert records[0][2] == 15

    def test_disabled_tracer_drops(self):
        t = Tracer()
        t.enabled = False
        t.record(0.0, "e")
        assert t.records() == []

    def test_fingerprint_detects_order(self):
        t1, t2 = Tracer(), Tracer()
        t1.record(0.0, "a")
        t1.record(1.0, "b")
        t2.record(1.0, "b")
        t2.record(0.0, "a")
        assert t1.fingerprint() != t2.fingerprint()

    def test_fingerprint_equal_for_equal_traces(self):
        t1, t2 = Tracer(), Tracer()
        for t in (t1, t2):
            t.record(0.5, "x", {"k": 1})
            t.record(0.7, "y", [1, 2])
        assert t1.fingerprint() == t2.fingerprint()

    def test_clear(self):
        t = Tracer()
        t.record(0.0, "e")
        t.clear()
        assert t.records() == []


class TestKapResult:
    def test_empty_phases_report_zero(self):
        r = KapResult(KapConfig(nnodes=1, procs_per_node=1))
        assert r.max_producer_latency == 0.0
        assert r.max_sync_latency == 0.0
        assert r.max_consumer_latency == 0.0

    def test_summaries_none_for_empty(self):
        r = KapResult(KapConfig(nnodes=1, procs_per_node=1))
        assert r.summaries() == {"producer": None, "sync": None,
                                 "consumer": None}

    def test_max_metrics_track_series(self):
        r = KapResult(KapConfig(nnodes=1, procs_per_node=1))
        r.producer.extend([0.1, 0.5, 0.3])
        r.sync.add(1.0)
        assert r.max_producer_latency == 0.5
        assert r.max_sync_latency == 1.0
        assert r.summaries()["producer"].count == 3


# ----------------------------------------------------------------------
# adaptive span sampling (SpanTracer head/tail sampling)
# ----------------------------------------------------------------------
class TestSpanSampling:
    def _trace(self, tr, error=False):
        root = tr.start_trace("call", 0)
        child = tr.start_span((root.trace_id, root.span_id),
                              "hop", "fwd", 1)
        tr.finish(child, **({"error": "boom"} if error else {}))
        tr.finish(root)
        return root.trace_id

    def test_default_keeps_every_trace(self):
        tr = SpanTracer(lambda: 0.0)
        for _ in range(10):
            self._trace(tr)
        assert len(tr.traces()) == 10
        assert tr.dropped_traces == 0

    def test_head_sampling_keeps_every_nth(self):
        tr = SpanTracer(lambda: 0.0, sample_every=3)
        tids = [self._trace(tr) for _ in range(9)]
        kept = set(tr.traces())
        assert kept == {tids[0], tids[3], tids[6]}
        assert tr.dropped_traces == 6

    def test_error_traces_always_kept(self):
        tr = SpanTracer(lambda: 0.0, sample_every=1000)
        tids = [self._trace(tr, error=(i == 5)) for i in range(10)]
        kept = set(tr.traces())
        assert tids[0] in kept          # head-sampled
        assert tids[5] in kept          # tail-kept on error
        assert len(kept) == 2
        errs = tr.error_spans()
        assert errs and all(s.trace_id == tids[5] for s in errs)

    def test_budget_doubles_sample_rate(self):
        tr = SpanTracer(lambda: 0.0, sample_every=2, span_budget=4)
        tr._compact_at = 16             # compact early for the test
        for _ in range(64):
            self._trace(tr)
        assert tr.sample_every > 2
        assert tr.dropped_spans > 0

    def test_sampled_chrome_trace_still_validates(self):
        tr = SpanTracer(lambda: 0.0, sample_every=4)
        for i in range(16):
            self._trace(tr, error=(i == 9))
        doc = tr.to_chrome_trace()
        assert validate_trace(doc) == []


# ----------------------------------------------------------------------
# Prometheus text exposition (HELP/TYPE + validating parser)
# ----------------------------------------------------------------------
class TestPrometheusExport:
    def _snapshot(self):
        reg = MetricsRegistry()
        reg.counter("reqs_total", plane="tree").inc(3)
        reg.gauge("depth").set(2)
        h = reg.histogram("lat_seconds", bounds=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        return reg.snapshot()

    def test_help_and_type_precede_samples(self):
        text = snapshot_to_prometheus(self._snapshot())
        lines = text.splitlines()
        for family in ("reqs_total", "depth", "lat_seconds"):
            help_i = lines.index(next(
                ln for ln in lines
                if ln.startswith(f"# HELP {family} ")))
            type_i = lines.index(f"# TYPE {family} " + (
                "counter" if family.endswith("_total") else
                "gauge" if family == "depth" else "histogram"))
            first_sample = min(i for i, ln in enumerate(lines)
                               if ln.startswith(family))
            assert help_i < first_sample and type_i < first_sample

    def test_histogram_buckets_cumulative_with_inf(self):
        text = snapshot_to_prometheus(self._snapshot())
        buckets = [ln for ln in text.splitlines()
                   if ln.startswith("lat_seconds_bucket")]
        counts = [int(ln.rsplit(" ", 1)[1]) for ln in buckets]
        assert counts == sorted(counts)      # cumulative
        assert 'le="+Inf"' in buckets[-1]
        count_line = next(ln for ln in text.splitlines()
                          if ln.startswith("lat_seconds_count"))
        assert int(count_line.rsplit(" ", 1)[1]) == counts[-1]

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("odd_total", tag='a"b\\c\nd').inc()
        text = snapshot_to_prometheus(reg.snapshot())
        assert '\\"' in text and "\\\\" in text and "\\n" in text
        assert parse_prometheus_text(text) == []

    def test_exported_text_parses_clean(self):
        assert parse_prometheus_text(
            snapshot_to_prometheus(self._snapshot())) == []

    def test_parser_flags_undeclared_family(self):
        bad = "# HELP a a\n# TYPE a counter\na 1\nb 2\n"
        assert any("b" in p for p in parse_prometheus_text(bad))

    def test_parser_flags_noncumulative_buckets(self):
        bad = ("# HELP h h\n# TYPE h histogram\n"
               'h_bucket{le="0.1"} 5\nh_bucket{le="1"} 3\n'
               'h_bucket{le="+Inf"} 5\nh_count 5\nh_sum 1\n')
        assert parse_prometheus_text(bad)

    def test_parser_flags_missing_inf_bucket(self):
        bad = ("# HELP h h\n# TYPE h histogram\n"
               'h_bucket{le="0.1"} 1\nh_count 1\nh_sum 0.05\n')
        assert parse_prometheus_text(bad)


# ----------------------------------------------------------------------
# Chrome-trace export of failover spans (election + respawn)
# ----------------------------------------------------------------------
class TestFailoverSpanExport:
    def test_election_spans_exported(self, tmp_path):
        """Killing the KVS root with standbys configured must leave
        per-candidate ``kvs_election`` traces in the Chrome export,
        with the winner recorded on the winning candidate's span."""
        path = str(tmp_path / "election-trace.json")
        report = run_chaos_workload(
            n_nodes=15, n_clients=8, drop_rate=0.01,
            seed=5, fault_seed=13, kill_ranks=(0,), kill_at=0.12,
            hb_period=0.05, n_iters=2, iter_gap=0.1,
            timeout=0.5, retries=10, run_until=40.0,
            kvs_replicas=(1, 2), trace_out=path)
        assert report.converged, report.errors
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
        assert validate_trace(doc) == []
        elections = [ev for ev in doc["traceEvents"]
                     if ev.get("name") == "kvs_election"]
        assert elections, "no kvs_election spans in the export"
        winners = [ev["args"]["winner"] for ev in elections
                   if "winner" in ev["args"]]
        assert winners, "no candidate recorded an election winner"
        assert all(w in (1, 2) for w in winners)

    def test_respawn_spans_exported(self, tmp_path):
        """A mid-job broker kill must leave a ``wexec_respawn`` root
        span (the respawn epoch fanout) in the Chrome export."""
        path = str(tmp_path / "respawn-trace.json")
        report = run_job_chaos_workload(
            n_nodes=15, nprocs=8, kill_ranks=(1,), task_work=1.0,
            trace_out=path)
        assert report.converged, report.errors
        assert report.respawns > 0
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
        assert validate_trace(doc) == []
        respawns = [ev for ev in doc["traceEvents"]
                    if ev.get("name") == "wexec_respawn"]
        assert respawns, "no wexec_respawn spans in the export"
        root_spans = [ev for ev in respawns
                      if ev["args"].get("parent_id") is None]
        assert root_spans, "respawn fanout should open its own trace"
