"""Tests for workload generation and schedule metrics."""

import random

import pytest

from repro.core import FluxInstance, JobKind, JobSpec
from repro.resource import ResourcePool, build_cluster_graph
from repro.sched import (EasyBackfillPolicy, ScheduleReport, batch_mix,
                         bounded_slowdown, burst_waves, ensemble_burst,
                         merge, replay, report)
from repro.sim import Simulation


def make_instance(ncores=64, policy=None):
    sim = Simulation(seed=0)
    graph = build_cluster_graph("w", 1, ncores // 16)
    return sim, FluxInstance(sim, ResourcePool(graph), policy=policy)


class TestBatchMix:
    def test_reproducible(self):
        a = batch_mix(50, seed=3)
        b = batch_mix(50, seed=3)
        assert [(t, s.ncores, s.duration) for t, s in a] == \
            [(t, s.ncores, s.duration) for t, s in b]

    def test_different_seeds_differ(self):
        a = batch_mix(50, seed=3)
        b = batch_mix(50, seed=4)
        assert [t for t, _ in a] != [t for t, _ in b]

    def test_arrivals_sorted_and_positive(self):
        wl = batch_mix(100, seed=1)
        times = [t for t, _ in wl]
        assert times == sorted(times)
        assert all(t > 0 for t in times)

    def test_sizes_from_menu(self):
        wl = batch_mix(200, seed=2, sizes=(2, 8))
        assert {s.ncores for _, s in wl} <= {2, 8}

    def test_small_jobs_more_common(self):
        wl = batch_mix(500, seed=5, sizes=(1, 64))
        ones = sum(1 for _, s in wl if s.ncores == 1)
        assert ones > 400  # weight 1 vs 1/64

    def test_durations_bounded(self):
        wl = batch_mix(100, seed=6, min_duration=2.0, max_duration=50.0)
        assert all(2.0 <= s.duration <= 50.0 for _, s in wl)

    def test_walltime_overestimates(self):
        wl = batch_mix(100, seed=7, walltime_slack=3.0)
        assert all(s.walltime >= s.duration for _, s in wl)
        assert any(s.walltime > s.duration * 1.5 for _, s in wl)

    def test_accepts_shared_rng(self):
        rng = random.Random(9)
        a = batch_mix(10, seed=rng)
        b = batch_mix(10, seed=rng)  # advances the same stream
        assert [t for t, _ in a] != [t for t, _ in b]


class TestEnsembleAndBursts:
    def test_ensemble_individual_members(self):
        wl = ensemble_burst(16, at=5.0, member_cores=4)
        assert len(wl) == 16
        assert all(t == 5.0 for t, _ in wl)
        assert all(s.ncores == 4 for _, s in wl)

    def test_ensemble_as_instance_job(self):
        wl = ensemble_burst(16, as_instance=64)
        assert len(wl) == 1
        _, spec = wl[0]
        assert spec.kind is JobKind.INSTANCE
        assert len(spec.subjobs) == 16 and spec.ncores == 64

    def test_burst_waves_shape(self):
        wl = burst_waves(3, 10, first_at=2.0, spacing=10.0, jitter=0.5)
        assert len(wl) == 30
        times = [t for t, _ in wl]
        assert times == sorted(times)
        assert min(times) >= 2.0 and max(times) <= 22.5

    def test_merge_interleaves(self):
        a = burst_waves(1, 3, first_at=0.0, seed=1)
        b = burst_waves(1, 3, first_at=0.1, seed=2)
        merged = merge(a, b)
        assert len(merged) == 6
        assert [t for t, _ in merged] == sorted(t for t, _ in merged)


class TestReplay:
    def test_jobs_submitted_at_arrival_times(self):
        sim, inst = make_instance()
        wl = [(1.0, JobSpec(ncores=4, duration=0.5, name="a")),
              (3.0, JobSpec(ncores=4, duration=0.5, name="b"))]
        proc = replay(sim, inst, wl)
        sim.run()
        jobs = proc.value
        assert [j.submit_time for j in jobs] == [1.0, 3.0]
        assert all(j.state.value == "complete" for j in jobs)

    def test_full_batch_workload_completes(self):
        sim, inst = make_instance(policy=EasyBackfillPolicy())
        wl = batch_mix(60, seed=11, mean_interarrival=0.5,
                       sizes=(1, 2, 4, 8, 16), max_duration=20.0)
        replay(sim, inst, wl)
        sim.run()
        assert len(inst.completed_jobs()) == 60


class TestMetrics:
    def test_bounded_slowdown_floor(self):
        sim, inst = make_instance()
        job = inst.submit(JobSpec(ncores=4, duration=0.1))
        sim.run()
        # Tiny job with no wait: bsld clamps to 1 via the tau floor.
        assert bounded_slowdown(job) == 1.0

    def test_bounded_slowdown_counts_waits(self):
        sim, inst = make_instance(ncores=16)
        inst.submit(JobSpec(ncores=16, duration=20.0))
        queued = inst.submit(JobSpec(ncores=16, duration=20.0))
        sim.run()
        # waited 20, ran 20 -> bsld 2.0
        assert bounded_slowdown(queued) == pytest.approx(2.0)

    def test_unfinished_job_has_no_bsld(self):
        sim, inst = make_instance()
        job = inst.submit(JobSpec(ncores=4, duration=10.0))
        sim.run(until=1.0)
        assert bounded_slowdown(job) is None

    def test_report_aggregates(self):
        sim, inst = make_instance(ncores=16)
        for i in range(4):
            inst.submit(JobSpec(ncores=16, duration=5.0, name=f"j{i}"))
        sim.run()
        rep = report(inst)
        assert rep.njobs == 4 and rep.completed == 4 and rep.failed == 0
        assert rep.makespan == pytest.approx(20.0)
        assert rep.mean_wait == pytest.approx((0 + 5 + 10 + 15) / 4)
        assert rep.utilization == pytest.approx(1.0)
        assert rep.throughput == pytest.approx(4 / 20.0)

    def test_report_prefix_filter(self):
        sim, inst = make_instance(ncores=32)
        inst.submit(JobSpec(ncores=16, duration=2.0, name="batch0"))
        inst.submit(JobSpec(ncores=16, duration=2.0, name="wave0"))
        sim.run()
        assert report(inst, name_prefix="wave").njobs == 1
        assert report(inst, name_prefix="batch").njobs == 1
        assert report(inst).njobs == 2

    def test_report_counts_failures(self):
        sim, inst = make_instance()

        def bad(job, instance):
            yield instance.sim.timeout(0.1)
            raise RuntimeError("x")

        inst.submit(JobSpec(ncores=4, body=bad))
        sim.run()
        rep = report(inst)
        assert rep.failed == 1 and rep.completed == 0

    def test_row_and_header_align(self):
        rep = ScheduleReport(njobs=5, completed=5, failed=0, makespan=10,
                             mean_wait=1, max_wait=2, mean_bsld=1.5,
                             p95_bsld=2.0, utilization=0.8,
                             throughput=0.5)
        assert len(rep.row().split()) == len(ScheduleReport.header().split())


class TestGantt:
    def _finished_instance(self):
        sim, inst = make_instance(ncores=16)
        inst.submit(JobSpec(ncores=16, duration=4.0, name="first"))
        inst.submit(JobSpec(ncores=16, duration=4.0, name="second"))
        sim.run()
        return sim, inst

    def test_gantt_renders_rows(self):
        from repro.sched import gantt
        _, inst = self._finished_instance()
        chart = gantt(inst, width=40)
        lines = chart.splitlines()
        assert any("first" in l for l in lines)
        assert any("second" in l for l in lines)
        first = next(l for l in lines if l.startswith("first"))
        second = next(l for l in lines if l.startswith("second"))
        assert "#" in first and "#" in second
        # The second job waited: its row shows queued dots.
        assert "." in second and "." not in first.split("|", 1)[0]

    def test_gantt_empty_instance(self):
        from repro.sched import gantt
        sim, inst = make_instance()
        assert gantt(inst) == "(no jobs)"

    def test_gantt_truncates(self):
        from repro.sched import gantt
        sim, inst = make_instance(ncores=64)
        for i in range(10):
            inst.submit(JobSpec(ncores=4, duration=1.0, name=f"j{i}"))
        sim.run()
        chart = gantt(inst, max_jobs=3)
        assert "7 more jobs not shown" in chart

    def test_sparkline_tracks_load(self):
        from repro.sched import utilization_sparkline
        _, inst = self._finished_instance()
        spark = utilization_sparkline(inst, width=8)
        assert len(spark) == 8
        assert set(spark) == {"█"}  # machine fully busy throughout

    def test_sparkline_idle_instance(self):
        from repro.sched import utilization_sparkline
        sim, inst = make_instance()
        sim.run(until=1.0)
        spark = utilization_sparkline(inst, width=5, horizon=1.0)
        assert set(spark) <= {" "}
